//! Reusable scratch buffers for allocation-free hot loops.
//!
//! Gradient-descent training and the compressed factorized operators
//! need the same intermediate shapes on every epoch / for every source.
//! A [`Workspace`] is an explicit pool those intermediates are checked
//! out of and returned to, so steady-state iterations perform **zero
//! fresh heap allocations** once the pool is warm.
//!
//! # Contract
//!
//! * [`Workspace::take`] returns a zeroed buffer of exactly the
//!   requested length, reusing the smallest pooled buffer whose
//!   capacity fits; only a pool miss allocates (and increments
//!   [`Workspace::fresh_allocations`], which tests use to assert
//!   steady-state behaviour).
//! * [`Workspace::give`] returns a buffer to the pool; shape is
//!   irrelevant, only capacity is tracked.
//! * `*_into` kernels never allocate for their *output* (the caller
//!   owns it); they may check scratch out of a workspace they are
//!   handed, and always return it before they come back.
//! * Thread-spawn bookkeeping inside the parallel kernels is outside
//!   this contract: the pool tracks matrix-sized buffers, which are
//!   what dominate allocation traffic per epoch.

use crate::{DenseMatrix, MatrixError, Result};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Capacity-tracked pool of `f64` buffers (see the module docs).
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
    fresh_allocations: usize,
    outstanding_elems: usize,
    high_water_elems: usize,
}

impl Workspace {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a zeroed buffer of length `len`.
    ///
    /// Reuses the best-fitting pooled buffer; allocates only when no
    /// pooled buffer has sufficient capacity.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        self.outstanding_elems += len;
        if self.outstanding_elems > self.high_water_elems {
            self.high_water_elems = self.outstanding_elems;
            crate::metrics::WORKSPACE_HIGH_WATER_ELEMS.set_max(self.high_water_elems as u64);
        }
        // Best fit: smallest capacity that still holds `len`.
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.fresh_allocations += 1;
                vec![0.0; len]
            }
        }
    }

    /// Returns a buffer to the pool.
    pub fn give(&mut self, buf: Vec<f64>) {
        // Saturating: callers may shrink a buffer before returning it.
        self.outstanding_elems = self.outstanding_elems.saturating_sub(buf.len());
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Checks out a zeroed `rows × cols` matrix.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> DenseMatrix {
        // `take` returns exactly rows*cols elements; the fallback is a
        // defensive fresh allocation, never reached in practice.
        DenseMatrix::from_vec(rows, cols, self.take(rows * cols))
            .unwrap_or_else(|_| DenseMatrix::zeros(rows, cols))
    }

    /// Returns a matrix's buffer to the pool.
    pub fn give_matrix(&mut self, m: DenseMatrix) {
        self.give(m.into_vec());
    }

    /// Number of pool misses since construction — i.e. how many fresh
    /// heap allocations the workspace performed. Constant across
    /// iterations once a loop reaches steady state.
    pub fn fresh_allocations(&self) -> usize {
        self.fresh_allocations
    }

    /// Number of buffers currently checked in.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Largest number of `f64` elements simultaneously checked out of
    /// this workspace so far — the scratch footprint high-water mark.
    /// Also folded (via `set_max`) into the process-wide
    /// `matrix.workspace.high_water_elems` gauge.
    pub fn high_water_elems(&self) -> usize {
        self.high_water_elems
    }
}

/// A sharded pool of [`Workspace`]s for long-lived multi-threaded hosts
/// (the `amalur-serve` worker pool).
///
/// Each worker leases *its own* shard by index, so in steady state
/// shards are uncontended and a worker sees exactly the single-threaded
/// [`Workspace`] reuse behaviour: after the first few requests warm a
/// shard's pool, subsequent requests on that shard perform zero fresh
/// allocations. The arena is `Sync` — share it across worker threads
/// behind an `Arc`.
#[derive(Debug)]
pub struct WorkspaceArena {
    shards: Vec<Mutex<Workspace>>,
}

/// Exclusive lease on one arena shard; derefs to the [`Workspace`].
pub struct WorkspaceLease<'a> {
    guard: MutexGuard<'a, Workspace>,
}

impl std::ops::Deref for WorkspaceLease<'_> {
    type Target = Workspace;
    fn deref(&self) -> &Workspace {
        &self.guard
    }
}

impl std::ops::DerefMut for WorkspaceLease<'_> {
    fn deref_mut(&mut self) -> &mut Workspace {
        &mut self.guard
    }
}

impl WorkspaceArena {
    /// Creates an arena with `shards` independent workspace pools
    /// (at least one).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Workspace::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Leases shard `shard % self.shards()` (wrapping keeps any worker
    /// index valid). Blocks if another thread holds the same shard —
    /// by construction serving workers lease only their own.
    pub fn lease(&self, shard: usize) -> WorkspaceLease<'_> {
        let idx = shard % self.shards.len();
        WorkspaceLease {
            guard: self.shards[idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Total pool misses across all shards — the arena-wide analogue of
    /// [`Workspace::fresh_allocations`], constant across requests once
    /// every shard's pool is warm.
    pub fn fresh_allocations(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .fresh_allocations()
            })
            .sum()
    }

    /// Total buffers currently checked in across all shards.
    pub fn pooled(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).pooled())
            .sum()
    }
}

/// Validates that `out` has the expected shape for an `_into` kernel.
pub(crate) fn check_out_shape(
    op: &'static str,
    out: &DenseMatrix,
    rows: usize,
    cols: usize,
) -> Result<()> {
    if out.shape() != (rows, cols) {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: (rows, cols),
            rhs: out.shape(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_exact_length() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(5);
        assert_eq!(buf, vec![0.0; 5]);
        buf[0] = 3.0;
        ws.give(buf);
        let again = ws.take(4);
        assert_eq!(again, vec![0.0; 4]); // stale contents cleared
    }

    #[test]
    fn pool_hit_avoids_fresh_allocation() {
        let mut ws = Workspace::new();
        let buf = ws.take(100);
        assert_eq!(ws.fresh_allocations(), 1);
        ws.give(buf);
        let buf = ws.take(64); // fits in the pooled capacity
        assert_eq!(ws.fresh_allocations(), 1);
        ws.give(buf);
        let _big = ws.take(1000); // forced miss
        assert_eq!(ws.fresh_allocations(), 2);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let small = ws.take(10);
        let large = ws.take(1000);
        ws.give(small);
        ws.give(large);
        let buf = ws.take(8);
        assert!(buf.capacity() < 1000, "picked the 10-cap buffer");
        ws.give(buf);
        assert_eq!(ws.pooled(), 2);
    }

    #[test]
    fn matrix_roundtrip() {
        let mut ws = Workspace::new();
        let m = ws.take_matrix(3, 4);
        assert_eq!(m.shape(), (3, 4));
        ws.give_matrix(m);
        let m2 = ws.take_matrix(2, 6);
        assert_eq!(ws.fresh_allocations(), 1);
        assert_eq!(m2.shape(), (2, 6));
    }

    #[test]
    fn arena_shards_are_independent_pools() {
        let arena = WorkspaceArena::new(2);
        {
            let mut ws = arena.lease(0);
            let buf = ws.take(64);
            ws.give(buf);
        }
        assert_eq!(arena.fresh_allocations(), 1);
        {
            // Shard 1 has its own (empty) pool: this is a miss.
            let mut ws = arena.lease(1);
            let buf = ws.take(64);
            ws.give(buf);
        }
        assert_eq!(arena.fresh_allocations(), 2);
        {
            // Shard 0 again: warm pool, no new miss.
            let mut ws = arena.lease(0);
            let buf = ws.take(32);
            ws.give(buf);
        }
        assert_eq!(arena.fresh_allocations(), 2);
        assert_eq!(arena.pooled(), 2);
    }

    #[test]
    fn arena_lease_wraps_shard_index_and_shares_across_threads() {
        let arena = std::sync::Arc::new(WorkspaceArena::new(3));
        assert_eq!(arena.shards(), 3);
        std::thread::scope(|scope| {
            for worker in 0..6usize {
                let arena = std::sync::Arc::clone(&arena);
                scope.spawn(move || {
                    for _ in 0..10 {
                        let mut ws = arena.lease(worker);
                        let m = ws.take_matrix(4, 4);
                        ws.give_matrix(m);
                    }
                });
            }
        });
        // 6 workers wrap onto 3 shards; each shard allocated its one
        // 16-element buffer at most twice (two workers may race the
        // first take before either gives back).
        assert!(arena.fresh_allocations() <= 6);
        assert!(arena.pooled() >= 3);
    }

    #[test]
    fn arena_zero_shards_clamps_to_one() {
        let arena = WorkspaceArena::new(0);
        assert_eq!(arena.shards(), 1);
        let mut ws = arena.lease(7); // wraps onto the single shard
        let buf = ws.take(8);
        ws.give(buf);
    }

    #[test]
    fn steady_state_loop_stops_allocating() {
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let a = ws.take_matrix(7, 5);
            let b = ws.take_matrix(5, 1);
            ws.give_matrix(a);
            ws.give_matrix(b);
        }
        let after_warmup = ws.fresh_allocations();
        for _ in 0..100 {
            let a = ws.take_matrix(7, 5);
            let b = ws.take_matrix(5, 1);
            ws.give_matrix(a);
            ws.give_matrix(b);
        }
        assert_eq!(ws.fresh_allocations(), after_warmup);
    }
}
