//! Error type for ML training.

use std::fmt;

/// Convenience alias for ML results.
pub type Result<T> = std::result::Result<T, MlError>;

/// Errors produced during model training or prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Features/labels disagree in shape.
    ShapeMismatch {
        /// What was being validated.
        what: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Found dimension.
        found: usize,
    },
    /// Invalid hyper-parameter (e.g. zero clusters, negative rate).
    InvalidConfig(String),
    /// Input contains NaN/Inf where finite values are required.
    NonFiniteInput(&'static str),
    /// Training diverged (loss became non-finite).
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
    /// Model used before fitting.
    NotFitted,
    /// Error bubbled up from the compute layer.
    Compute(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ShapeMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch in {what}: expected {expected}, found {found}"
            ),
            MlError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            MlError::NonFiniteInput(what) => write!(f, "non-finite values in {what}"),
            MlError::Diverged { epoch } => write!(f, "training diverged at epoch {epoch}"),
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::Compute(m) => write!(f, "compute error: {m}"),
        }
    }
}

impl std::error::Error for MlError {}

impl From<amalur_factorize::FactorizeError> for MlError {
    fn from(e: amalur_factorize::FactorizeError) -> Self {
        MlError::Compute(e.to_string())
    }
}

impl From<amalur_matrix::MatrixError> for MlError {
    fn from(e: amalur_matrix::MatrixError) -> Self {
        MlError::Compute(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(MlError::NotFitted.to_string().contains("not been fitted"));
        assert!(MlError::Diverged { epoch: 3 }
            .to_string()
            .contains("epoch 3"));
        let e: MlError = amalur_matrix::MatrixError::Singular.into();
        assert!(matches!(e, MlError::Compute(_)));
    }
}
