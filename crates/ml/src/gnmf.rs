//! Gaussian non-negative matrix factorization (multiplicative updates).
//!
//! Factorizes `T ≈ W·H` with `W ≥ 0` (`n × r`) and `H ≥ 0` (`r × d`)
//! using Lee–Seung multiplicative updates:
//!
//! ```text
//! H ← H ∘ (WᵀT) / (WᵀW H)
//! W ← W ∘ (THᵀ) / (W H Hᵀ)
//! ```
//!
//! `WᵀT = (Tᵀ W)ᵀ` and `T Hᵀ` are one `t_mul` / `mul_right` each, so the
//! whole algorithm runs factorized. The reconstruction loss uses
//! `‖T‖²_F` from `row_norms_sq`, again avoiding materialization.

use crate::{MlError, Result};
use amalur_factorize::LinOps;
use amalur_matrix::{DenseMatrix, Workspace};
use rand::SeedableRng;

/// Hyper-parameters for [`Gnmf`].
#[derive(Debug, Clone)]
pub struct GnmfConfig {
    /// Factorization rank `r`.
    pub rank: usize,
    /// Number of multiplicative-update iterations.
    pub iters: usize,
    /// RNG seed for the non-negative initialization.
    pub seed: u64,
}

impl Default for GnmfConfig {
    fn default() -> Self {
        Self {
            rank: 2,
            iters: 100,
            seed: 42,
        }
    }
}

/// Gaussian NMF via multiplicative updates. Requires `T ≥ 0` element-wise
/// for the non-negativity guarantee (standard NMF precondition).
#[derive(Debug, Clone)]
pub struct Gnmf {
    config: GnmfConfig,
    w: Option<DenseMatrix>,
    h: Option<DenseMatrix>,
    loss_history: Vec<f64>,
}

const EPS: f64 = 1e-12;

impl Gnmf {
    /// Creates an unfitted model.
    pub fn new(config: GnmfConfig) -> Self {
        Self {
            config,
            w: None,
            h: None,
            loss_history: Vec::new(),
        }
    }

    /// Runs the multiplicative updates on `x`.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] for rank 0 or rank > min(n, d).
    pub fn fit<L: LinOps>(&mut self, x: &L) -> Result<()> {
        let mut ws = Workspace::new();
        self.fit_with_workspace(x, &mut ws)
    }

    /// [`Self::fit`] drawing every per-iteration intermediate from `ws`
    /// (allocation-free multiplicative updates once the pool is warm).
    ///
    /// # Errors
    /// As [`Self::fit`].
    pub fn fit_with_workspace<L: LinOps>(&mut self, x: &L, ws: &mut Workspace) -> Result<()> {
        let n = x.n_rows();
        let d = x.n_cols();
        let r = self.config.rank;
        if r == 0 || r > n.min(d) {
            return Err(MlError::InvalidConfig(format!(
                "rank {r} must be in 1..={}",
                n.min(d)
            )));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        let mut w = DenseMatrix::random_uniform(n, r, 0.1, 1.0, &mut rng);
        let mut h = DenseMatrix::random_uniform(r, d, 0.1, 1.0, &mut rng);
        let t_norm_sq: f64 = x.row_norms_sq().iter().sum();
        // Reusable buffers for every shape the update loop produces.
        let mut dr = ws.take_matrix(d, r); // Tᵀ·W
        let mut wt_t = ws.take_matrix(r, d); // (Tᵀ·W)ᵀ
        let mut wtw = ws.take_matrix(r, r);
        let mut denom_h = ws.take_matrix(r, d);
        let mut h_t = ws.take_matrix(d, r);
        let mut t_ht = ws.take_matrix(n, r);
        let mut hht = ws.take_matrix(r, r);
        let mut denom_w = ws.take_matrix(n, r);
        self.loss_history.clear();
        // Fallible body runs in a closure so the checked-out buffers are
        // returned to the pool on every exit path (workspace contract).
        let outcome = (|| -> Result<()> {
            for _ in 0..self.config.iters {
                // H update: H ∘ (WᵀT) / (WᵀW H)
                x.t_mul_into(&w, &mut dr, ws)?; // d × r
                dr.transpose_into(&mut wt_t)?; // r × d
                w.gram_into(&mut wtw)?; // r × r
                wtw.matmul_into(&h, &mut denom_h)?;
                update_inplace(&mut h, &wt_t, &denom_h);
                // W update: W ∘ (THᵀ) / (W (H Hᵀ))
                h.transpose_into(&mut h_t)?;
                x.mul_right_into(&h_t, &mut t_ht, ws)?; // n × r
                h.matmul_transpose_into(&h, &mut hht)?; // r × r
                w.matmul_into(&hht, &mut denom_w)?;
                update_inplace(&mut w, &t_ht, &denom_w);
                // Loss: ‖T‖² − 2·tr(Hᵀ(WᵀT)) + tr((WᵀW)(HHᵀ))
                x.t_mul_into(&w, &mut dr, ws)?;
                dr.transpose_into(&mut wt_t)?;
                let cross: f64 = wt_t
                    .as_slice()
                    .iter()
                    .zip(h.as_slice())
                    .map(|(&a, &b)| a * b)
                    .sum();
                w.gram_into(&mut wtw)?;
                h.matmul_transpose_into(&h, &mut hht)?;
                // Both factors are symmetric, so tr((WᵀW)(HHᵀ)) is their
                // element-wise product summed.
                let quad: f64 = wtw
                    .as_slice()
                    .iter()
                    .zip(hht.as_slice())
                    .map(|(&a, &b)| a * b)
                    .sum();
                let loss = (t_norm_sq - 2.0 * cross + quad).max(0.0);
                self.loss_history.push(loss);
            }
            Ok(())
        })();
        ws.give_matrix(dr);
        ws.give_matrix(wt_t);
        ws.give_matrix(wtw);
        ws.give_matrix(denom_h);
        ws.give_matrix(h_t);
        ws.give_matrix(t_ht);
        ws.give_matrix(hht);
        ws.give_matrix(denom_w);
        outcome?;
        self.w = Some(w);
        self.h = Some(h);
        Ok(())
    }

    /// Fitted basis `W` (`n × r`).
    pub fn w(&self) -> Option<&DenseMatrix> {
        self.w.as_ref()
    }

    /// Fitted encoding `H` (`r × d`).
    pub fn h(&self) -> Option<&DenseMatrix> {
        self.h.as_ref()
    }

    /// Reconstruction `W·H`.
    ///
    /// # Errors
    /// [`MlError::NotFitted`] before fit.
    pub fn reconstruct(&self) -> Result<DenseMatrix> {
        let w = self.w.as_ref().ok_or(MlError::NotFitted)?;
        let h = self.h.as_ref().ok_or(MlError::NotFitted)?;
        Ok(w.matmul(h)?)
    }

    /// Per-iteration squared Frobenius reconstruction loss.
    pub fn loss_history(&self) -> &[f64] {
        &self.loss_history
    }
}

/// Element-wise multiplicative update `base ← base ∘ numer / (denom + ε)`.
fn update_inplace(base: &mut DenseMatrix, numer: &DenseMatrix, denom: &DenseMatrix) {
    debug_assert_eq!(base.shape(), numer.shape());
    debug_assert_eq!(base.shape(), denom.shape());
    for ((b, &nv), &dv) in base
        .as_mut_slice()
        .iter_mut()
        .zip(numer.as_slice())
        .zip(denom.as_slice())
    {
        *b *= nv / (dv + EPS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// An exactly rank-2 non-negative matrix.
    fn low_rank(n: usize, d: usize, seed: u64) -> DenseMatrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w = DenseMatrix::random_uniform(n, 2, 0.0, 1.0, &mut rng);
        let h = DenseMatrix::random_uniform(2, d, 0.0, 1.0, &mut rng);
        w.matmul(&h).unwrap()
    }

    #[test]
    fn reconstructs_low_rank_matrix() {
        let t = low_rank(30, 8, 1);
        let mut model = Gnmf::new(GnmfConfig {
            rank: 2,
            iters: 500,
            seed: 7,
        });
        model.fit(&t).unwrap();
        let recon = model.reconstruct().unwrap();
        let rel_err = recon.sub(&t).unwrap().frobenius_norm() / t.frobenius_norm();
        assert!(rel_err < 0.05, "relative error {rel_err} too high");
    }

    #[test]
    fn loss_is_non_increasing() {
        let t = low_rank(20, 6, 2);
        let mut model = Gnmf::new(GnmfConfig {
            rank: 2,
            iters: 100,
            seed: 3,
        });
        model.fit(&t).unwrap();
        let h = model.loss_history();
        // Multiplicative updates are monotone (up to fp noise).
        for w in h.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-6) + 1e-9);
        }
    }

    #[test]
    fn factors_stay_non_negative() {
        let t = low_rank(15, 5, 3);
        let mut model = Gnmf::new(GnmfConfig {
            rank: 3,
            iters: 50,
            seed: 4,
        });
        model.fit(&t).unwrap();
        assert!(model.w().unwrap().as_slice().iter().all(|&v| v >= 0.0));
        assert!(model.h().unwrap().as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn invalid_rank() {
        let t = low_rank(5, 4, 5);
        assert!(Gnmf::new(GnmfConfig {
            rank: 0,
            iters: 1,
            seed: 0
        })
        .fit(&t)
        .is_err());
        assert!(Gnmf::new(GnmfConfig {
            rank: 10,
            iters: 1,
            seed: 0
        })
        .fit(&t)
        .is_err());
    }

    #[test]
    fn not_fitted_errors() {
        let model = Gnmf::new(GnmfConfig::default());
        assert!(matches!(
            model.reconstruct().unwrap_err(),
            MlError::NotFitted
        ));
    }
}
