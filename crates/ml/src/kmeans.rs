//! K-Means clustering (Lloyd's algorithm) over [`LinOps`].
//!
//! The distance computation uses the expansion
//! `‖T_i − μ_c‖² = ‖T_i‖² − 2·T_i·μ_c + ‖μ_c‖²`,
//! where the cross term is a single `mul_right` against the centroid
//! matrix and the row norms come from `row_norms_sq` — both factorized
//! operators, so clustering never materializes the target table.

use crate::{MlError, Result};
use amalur_factorize::LinOps;
use amalur_matrix::{DenseMatrix, Workspace};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters for [`KMeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on centroid movement (Frobenius).
    pub tolerance: f64,
    /// RNG seed for centroid initialization (deterministic runs).
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iters: 100,
            tolerance: 1e-9,
            seed: 42,
        }
    }
}

/// Lloyd's K-Means.
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KMeansConfig,
    centroids: Option<DenseMatrix>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Creates an unfitted model.
    pub fn new(config: KMeansConfig) -> Self {
        Self {
            config,
            centroids: None,
            inertia: f64::INFINITY,
            iterations: 0,
        }
    }

    /// Clusters the rows of `x`, returning the assignment vector.
    ///
    /// Initialization picks `k` distinct data rows at random (seeded).
    /// Empty clusters keep their previous centroid.
    ///
    /// # Errors
    /// [`MlError::InvalidConfig`] for `k == 0` or `k > n_rows`.
    pub fn fit<L: LinOps>(&mut self, x: &L) -> Result<Vec<usize>> {
        let mut ws = Workspace::new();
        self.fit_with_workspace(x, &mut ws)
    }

    /// [`Self::fit`] drawing every per-iteration intermediate from `ws`
    /// (allocation-free Lloyd iterations once the pool is warm).
    ///
    /// # Errors
    /// As [`Self::fit`].
    pub fn fit_with_workspace<L: LinOps>(
        &mut self,
        x: &L,
        ws: &mut Workspace,
    ) -> Result<Vec<usize>> {
        let n = x.n_rows();
        let d = x.n_cols();
        let k = self.config.k;
        if k == 0 || k > n {
            return Err(MlError::InvalidConfig(format!(
                "k = {k} must be in 1..={n}"
            )));
        }
        // Initialize centroids from k distinct rows. Row extraction is
        // eᵢᵀ·T, i.e. (Tᵀ·eᵢ)ᵀ — one t_mul with a n×k one-hot matrix
        // fetches all k, staying backend-agnostic.
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let chosen = &indices[..k];
        // Reusable buffers: the one-hot/assignment matrix (n×k), the
        // d×k product of t_mul, its k×d transpose, the n×k cross terms
        // and the double-buffered centroids.
        let mut onehot = ws.take_matrix(n, k);
        let mut dk = ws.take_matrix(d, k);
        let mut cross = ws.take_matrix(n, k);
        let mut centroids_t = ws.take_matrix(d, k);
        let mut new_centroids = ws.take_matrix(k, d);
        for (c, &row) in chosen.iter().enumerate() {
            onehot.set(row, c, 1.0);
        }
        let mut centroids = DenseMatrix::zeros(k, d);
        let row_norms = x.row_norms_sq();
        let mut assignments = vec![0usize; n];
        let mut centroid_norms = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        // Fallible body runs in a closure so the checked-out buffers are
        // returned to the pool on every exit path (workspace contract).
        let outcome = (|| -> Result<()> {
            x.t_mul_into(&onehot, &mut dk, ws)?;
            dk.transpose_into(&mut centroids)?;
            for iter in 0..self.config.max_iters {
                // Cross terms: T · centroidsᵀ  (n × k).
                centroids.transpose_into(&mut centroids_t)?;
                x.mul_right_into(&centroids_t, &mut cross, ws)?;
                for (norm, c) in centroid_norms.iter_mut().zip(0..k) {
                    *norm = centroids.row(c).iter().map(|v| v * v).sum();
                }
                let mut inertia = 0.0;
                for i in 0..n {
                    let mut best = 0usize;
                    let mut best_d = f64::INFINITY;
                    let cross_row = cross.row(i);
                    for c in 0..k {
                        let dist = row_norms[i] - 2.0 * cross_row[c] + centroid_norms[c];
                        if dist < best_d {
                            best_d = dist;
                            best = c;
                        }
                    }
                    assignments[i] = best;
                    inertia += best_d.max(0.0);
                }
                self.inertia = inertia;
                self.iterations = iter + 1;
                // Update: μ_c = Σ_{i∈c} T_i / |c| via Tᵀ·A with A one-hot.
                onehot.as_mut_slice().fill(0.0);
                counts.iter_mut().for_each(|c| *c = 0);
                for (i, &c) in assignments.iter().enumerate() {
                    onehot.set(i, c, 1.0);
                    counts[c] += 1;
                }
                x.t_mul_into(&onehot, &mut dk, ws)?; // d × k column sums
                new_centroids
                    .as_mut_slice()
                    .copy_from_slice(centroids.as_slice());
                for (c, &count) in counts.iter().enumerate() {
                    if count == 0 {
                        continue; // keep previous centroid for empty clusters
                    }
                    let inv = 1.0 / count as f64;
                    for j in 0..d {
                        new_centroids.set(c, j, dk.get(j, c) * inv);
                    }
                }
                let movement = new_centroids
                    .as_slice()
                    .iter()
                    .zip(centroids.as_slice())
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                std::mem::swap(&mut centroids, &mut new_centroids);
                if movement < self.config.tolerance {
                    break;
                }
            }
            Ok(())
        })();
        ws.give_matrix(onehot);
        ws.give_matrix(dk);
        ws.give_matrix(cross);
        ws.give_matrix(centroids_t);
        ws.give_matrix(new_centroids);
        outcome?;
        self.centroids = Some(centroids);
        Ok(assignments)
    }

    /// Assigns each row of `x` to its nearest fitted centroid.
    ///
    /// # Errors
    /// [`MlError::NotFitted`] before `fit`.
    pub fn predict<L: LinOps>(&self, x: &L) -> Result<Vec<usize>> {
        let centroids = self.centroids.as_ref().ok_or(MlError::NotFitted)?;
        let k = centroids.rows();
        let cross = x.mul_right(&centroids.transpose())?;
        let row_norms = x.row_norms_sq();
        let centroid_norms: Vec<f64> = (0..k)
            .map(|c| centroids.row(c).iter().map(|v| v * v).sum())
            .collect();
        Ok((0..x.n_rows())
            .map(|i| {
                let cross_row = cross.row(i);
                // `k >= 1` whenever centroids exist; 0 is the harmless
                // default for the unreachable empty case.
                (0..k)
                    .min_by(|&a, &b| {
                        let da = row_norms[i] - 2.0 * cross_row[a] + centroid_norms[a];
                        let db = row_norms[i] - 2.0 * cross_row[b] + centroid_norms[b];
                        da.total_cmp(&db)
                    })
                    .unwrap_or(0)
            })
            .collect())
    }

    /// Fitted centroids (`k × d`).
    pub fn centroids(&self) -> Option<&DenseMatrix> {
        self.centroids.as_ref()
    }

    /// Final within-cluster sum of squares.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Number of Lloyd iterations executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two well-separated Gaussian-ish blobs.
    fn blobs(n_per: usize, seed: u64) -> (DenseMatrix, Vec<usize>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per {
            let _ = i;
            rows.push(vec![rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]);
            labels.push(0);
        }
        for _ in 0..n_per {
            rows.push(vec![
                10.0 + rng.gen_range(-0.5..0.5),
                10.0 + rng.gen_range(-0.5..0.5),
            ]);
            labels.push(1);
        }
        (DenseMatrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn separates_two_blobs() {
        let (x, truth) = blobs(50, 1);
        let mut km = KMeans::new(KMeansConfig {
            k: 2,
            ..KMeansConfig::default()
        });
        let assign = km.fit(&x).unwrap();
        // Perfect clustering up to label permutation.
        let agree = assign.iter().zip(&truth).filter(|(a, b)| a == b).count();
        let agreement = agree.max(assign.len() - agree) as f64 / assign.len() as f64;
        assert_eq!(agreement, 1.0);
        assert!(km.inertia() < 100.0);
        assert!(km.iterations() >= 1);
    }

    #[test]
    fn predict_matches_fit_assignments() {
        let (x, _) = blobs(30, 2);
        let mut km = KMeans::new(KMeansConfig {
            k: 2,
            ..KMeansConfig::default()
        });
        let assign = km.fit(&x).unwrap();
        let again = km.predict(&x).unwrap();
        assert_eq!(assign, again);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, _) = blobs(30, 3);
        let run = |seed| {
            let mut km = KMeans::new(KMeansConfig {
                k: 2,
                seed,
                ..KMeansConfig::default()
            });
            km.fit(&x).unwrap()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn invalid_k() {
        let (x, _) = blobs(5, 4);
        let mut km = KMeans::new(KMeansConfig {
            k: 0,
            ..KMeansConfig::default()
        });
        assert!(km.fit(&x).is_err());
        let mut km = KMeans::new(KMeansConfig {
            k: 100,
            ..KMeansConfig::default()
        });
        assert!(km.fit(&x).is_err());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let x = DenseMatrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![9.0, 0.0]]).unwrap();
        let mut km = KMeans::new(KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        });
        km.fit(&x).unwrap();
        assert!(km.inertia() < 1e-9);
    }

    #[test]
    fn not_fitted_predict_errors() {
        let (x, _) = blobs(5, 5);
        let km = KMeans::new(KMeansConfig::default());
        assert!(matches!(km.predict(&x).unwrap_err(), MlError::NotFitted));
    }
}
