//! ML models over the [`LinOps`] abstraction.
//!
//! §IV of the paper: "factorized learning does not affect model training
//! accuracy but often helps to improve the training efficiency". The
//! algorithms here are written once against [`LinOps`] and therefore run
//! bit-for-bit identically on
//!
//! * a materialized target table ([`amalur_matrix::DenseMatrix`]), or
//! * a factorized one ([`amalur_factorize::FactorizedTable`]),
//!
//! which the integration tests verify. The model set follows the
//! evaluation suite of Morpheus (Chen et al., PVLDB'17 — reference \[27\]
//! of the paper): linear regression, logistic regression, K-Means and
//! Gaussian non-negative matrix factorization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gnmf;
mod kmeans;
mod linreg;
mod logreg;
pub mod metrics;

pub use error::{MlError, Result};
pub use gnmf::{Gnmf, GnmfConfig};
pub use kmeans::{KMeans, KMeansConfig};
pub use linreg::{LinRegConfig, LinearRegression};
pub use logreg::{LogRegConfig, LogisticRegression};

pub use amalur_factorize::LinOps;
