//! Linear regression (gradient descent and closed-form ridge).

use crate::{MlError, Result};
use amalur_factorize::LinOps;
use amalur_matrix::{DenseMatrix, Workspace};

/// Hyper-parameters for [`LinearRegression`].
#[derive(Debug, Clone)]
pub struct LinRegConfig {
    /// Number of gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength (ridge); 0 disables it.
    pub l2: f64,
    /// Early-stopping tolerance on the loss decrease; 0 disables it.
    pub tolerance: f64,
}

impl Default for LinRegConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            learning_rate: 0.1,
            l2: 0.0,
            tolerance: 0.0,
        }
    }
}

/// Ordinary least squares / ridge regression.
///
/// Trained either iteratively (`fit`) — every epoch costs one
/// `mul_right` (predictions) and one `t_mul` (gradient), both of which
/// are factorized when the data is a `FactorizedTable` — or in closed
/// form (`fit_normal_equations`) via the factorized Gram matrix.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    config: LinRegConfig,
    theta: Option<DenseMatrix>,
    loss_history: Vec<f64>,
}

impl LinearRegression {
    /// Creates an unfitted model.
    pub fn new(config: LinRegConfig) -> Self {
        Self {
            config,
            theta: None,
            loss_history: Vec::new(),
        }
    }

    /// Gradient-descent training on `(X, y)`; `y` must be `n_rows × 1`.
    ///
    /// The update is `θ ← θ − α/n (Xᵀ(Xθ − y) + λθ)` from a zero
    /// initialization, making runs bit-comparable across execution
    /// backends.
    ///
    /// # Errors
    /// Shape mismatch, non-finite inputs, or divergence.
    pub fn fit<L: LinOps>(&mut self, x: &L, y: &DenseMatrix) -> Result<()> {
        let mut ws = Workspace::new();
        self.fit_with_workspace(x, y, &mut ws)
    }

    /// [`Self::fit`] drawing every per-epoch intermediate from `ws`:
    /// after the first epoch warms the pool, each epoch performs zero
    /// fresh heap allocations (assert with
    /// [`Workspace::fresh_allocations`]). Reuse one workspace across
    /// repeated fits to skip even the warm-up allocations.
    ///
    /// # Errors
    /// As [`Self::fit`].
    pub fn fit_with_workspace<L: LinOps>(
        &mut self,
        x: &L,
        y: &DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        validate_labels(x, y)?;
        let n = x.n_rows() as f64;
        let mut theta = DenseMatrix::zeros(x.n_cols(), 1);
        let mut resid = ws.take_matrix(x.n_rows(), 1);
        let mut grad = ws.take_matrix(x.n_cols(), 1);
        self.loss_history.clear();
        let mut prev_loss = f64::INFINITY;
        let mut outcome = Ok(());
        for epoch in 0..self.config.epochs {
            x.mul_right_into(&theta, &mut resid, ws)?; // resid = Xθ
            resid.sub_assign(y)?; // resid = Xθ − y
            let loss = resid.frobenius_norm_sq() / (2.0 * n);
            if !loss.is_finite() {
                outcome = Err(MlError::Diverged { epoch });
                break;
            }
            self.loss_history.push(loss);
            x.t_mul_into(&resid, &mut grad, ws)?;
            if self.config.l2 > 0.0 {
                grad.axpy_assign(self.config.l2, &theta)?;
            }
            theta.axpy_assign(-self.config.learning_rate / n, &grad)?;
            if self.config.tolerance > 0.0 && (prev_loss - loss).abs() < self.config.tolerance {
                break;
            }
            prev_loss = loss;
        }
        ws.give_matrix(resid);
        ws.give_matrix(grad);
        outcome?;
        self.theta = Some(theta);
        Ok(())
    }

    /// Closed-form training: solves `(XᵀX + λI)θ = Xᵀy` using the
    /// (factorized) Gram matrix.
    ///
    /// # Errors
    /// Shape mismatch or a singular normal-equations system.
    pub fn fit_normal_equations<L: LinOps>(&mut self, x: &L, y: &DenseMatrix) -> Result<()> {
        validate_labels(x, y)?;
        let mut gram = x.gram_matrix();
        if self.config.l2 > 0.0 {
            for i in 0..gram.rows() {
                let v = gram.get(i, i);
                gram.set(i, i, v + self.config.l2);
            }
        }
        let xty = x.t_mul(y)?;
        let theta = gram.solve(&xty)?;
        self.theta = Some(theta);
        self.loss_history.clear();
        Ok(())
    }

    /// Predicted values `Xθ`.
    ///
    /// # Errors
    /// [`MlError::NotFitted`] before `fit`, or shape mismatch.
    pub fn predict<L: LinOps>(&self, x: &L) -> Result<DenseMatrix> {
        let theta = self.theta.as_ref().ok_or(MlError::NotFitted)?;
        Ok(x.mul_right(theta)?)
    }

    /// The fitted coefficient vector.
    pub fn coefficients(&self) -> Option<&DenseMatrix> {
        self.theta.as_ref()
    }

    /// Per-epoch training loss (MSE/2).
    pub fn loss_history(&self) -> &[f64] {
        &self.loss_history
    }
}

pub(crate) fn validate_labels<L: LinOps>(x: &L, y: &DenseMatrix) -> Result<()> {
    if y.rows() != x.n_rows() {
        return Err(MlError::ShapeMismatch {
            what: "labels",
            expected: x.n_rows(),
            found: y.rows(),
        });
    }
    if y.cols() != 1 {
        return Err(MlError::ShapeMismatch {
            what: "label columns",
            expected: 1,
            found: y.cols(),
        });
    }
    if y.has_non_finite() {
        return Err(MlError::NonFiniteInput("labels"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// y = 2·x₀ − 3·x₁ + noiseless.
    fn toy_data(n: usize, seed: u64) -> (DenseMatrix, DenseMatrix) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = DenseMatrix::random_uniform(n, 2, -1.0, 1.0, &mut rng);
        let truth = DenseMatrix::from_rows(&[vec![2.0], vec![-3.0]]).unwrap();
        let y = x.matmul(&truth).unwrap();
        (x, y)
    }

    #[test]
    fn gd_recovers_true_coefficients() {
        let (x, y) = toy_data(200, 1);
        let mut model = LinearRegression::new(LinRegConfig {
            epochs: 500,
            learning_rate: 0.5,
            ..LinRegConfig::default()
        });
        model.fit(&x, &y).unwrap();
        let theta = model.coefficients().unwrap();
        assert!((theta.get(0, 0) - 2.0).abs() < 1e-3);
        assert!((theta.get(1, 0) + 3.0).abs() < 1e-3);
    }

    #[test]
    fn loss_decreases_monotonically_on_well_conditioned_data() {
        let (x, y) = toy_data(100, 2);
        let mut model = LinearRegression::new(LinRegConfig {
            epochs: 50,
            learning_rate: 0.1,
            ..LinRegConfig::default()
        });
        model.fit(&x, &y).unwrap();
        let h = model.loss_history();
        assert!(h.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn normal_equations_match_gd() {
        let (x, y) = toy_data(150, 3);
        let mut gd = LinearRegression::new(LinRegConfig {
            epochs: 2000,
            learning_rate: 0.5,
            ..LinRegConfig::default()
        });
        gd.fit(&x, &y).unwrap();
        let mut ne = LinearRegression::new(LinRegConfig::default());
        ne.fit_normal_equations(&x, &y).unwrap();
        assert!(gd
            .coefficients()
            .unwrap()
            .approx_eq(ne.coefficients().unwrap(), 1e-3));
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let (x, y) = toy_data(100, 4);
        let mut plain = LinearRegression::new(LinRegConfig::default());
        plain.fit_normal_equations(&x, &y).unwrap();
        let mut ridge = LinearRegression::new(LinRegConfig {
            l2: 50.0,
            ..LinRegConfig::default()
        });
        ridge.fit_normal_equations(&x, &y).unwrap();
        let norm = |m: &DenseMatrix| m.frobenius_norm();
        assert!(norm(ridge.coefficients().unwrap()) < norm(plain.coefficients().unwrap()));
    }

    #[test]
    fn early_stopping_truncates_history() {
        let (x, y) = toy_data(100, 5);
        let mut model = LinearRegression::new(LinRegConfig {
            epochs: 10_000,
            learning_rate: 0.5,
            tolerance: 1e-12,
            ..LinRegConfig::default()
        });
        model.fit(&x, &y).unwrap();
        assert!(model.loss_history().len() < 10_000);
    }

    #[test]
    fn predict_before_fit_errors() {
        let (x, _) = toy_data(10, 6);
        let model = LinearRegression::new(LinRegConfig::default());
        assert!(matches!(model.predict(&x).unwrap_err(), MlError::NotFitted));
    }

    #[test]
    fn label_validation() {
        let (x, _) = toy_data(10, 7);
        let mut model = LinearRegression::new(LinRegConfig::default());
        let wrong_rows = DenseMatrix::zeros(5, 1);
        assert!(matches!(
            model.fit(&x, &wrong_rows).unwrap_err(),
            MlError::ShapeMismatch { .. }
        ));
        let wrong_cols = DenseMatrix::zeros(10, 2);
        assert!(model.fit(&x, &wrong_cols).is_err());
        let mut nan = DenseMatrix::zeros(10, 1);
        nan.set(0, 0, f64::NAN);
        assert!(matches!(
            model.fit(&x, &nan).unwrap_err(),
            MlError::NonFiniteInput(_)
        ));
    }

    #[test]
    fn divergence_detected() {
        let (x, y) = toy_data(50, 8);
        let mut model = LinearRegression::new(LinRegConfig {
            epochs: 500,
            learning_rate: 1e6, // absurd rate forces divergence
            ..LinRegConfig::default()
        });
        assert!(matches!(
            model.fit(&x, &y).unwrap_err(),
            MlError::Diverged { .. }
        ));
    }

    #[test]
    fn prediction_error_is_small() {
        let (x, y) = toy_data(100, 9);
        let mut model = LinearRegression::new(LinRegConfig {
            epochs: 1000,
            learning_rate: 0.5,
            ..LinRegConfig::default()
        });
        model.fit(&x, &y).unwrap();
        let pred = model.predict(&x).unwrap();
        assert!(crate::metrics::mse(&pred.into_vec(), y.as_slice()) < 1e-6);
    }
}
