//! Binary logistic regression (gradient descent).

use crate::linreg::validate_labels;
use crate::{MlError, Result};
use amalur_factorize::LinOps;
use amalur_matrix::{DenseMatrix, Workspace};

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone)]
pub struct LogRegConfig {
    /// Number of gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            learning_rate: 0.5,
            l2: 0.0,
        }
    }
}

/// Binary logistic regression — the mortality classifier of the paper's
/// running example ("predict the mortality (binary classification) of
/// patients", §I).
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    config: LogRegConfig,
    theta: Option<DenseMatrix>,
    loss_history: Vec<f64>,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Creates an unfitted model.
    pub fn new(config: LogRegConfig) -> Self {
        Self {
            config,
            theta: None,
            loss_history: Vec::new(),
        }
    }

    /// Trains on `(X, y)` with `y ∈ {0, 1}` (`n_rows × 1`).
    ///
    /// # Errors
    /// Shape mismatch, labels outside `{0, 1}`, or divergence.
    pub fn fit<L: LinOps>(&mut self, x: &L, y: &DenseMatrix) -> Result<()> {
        let mut ws = Workspace::new();
        self.fit_with_workspace(x, y, &mut ws)
    }

    /// [`Self::fit`] drawing every per-epoch intermediate from `ws`
    /// (allocation-free epochs once the pool is warm).
    ///
    /// # Errors
    /// As [`Self::fit`].
    pub fn fit_with_workspace<L: LinOps>(
        &mut self,
        x: &L,
        y: &DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        validate_labels(x, y)?;
        if y.as_slice().iter().any(|&v| v != 0.0 && v != 1.0) {
            return Err(MlError::InvalidConfig(
                "logistic regression labels must be 0 or 1".into(),
            ));
        }
        let n = x.n_rows() as f64;
        let mut theta = DenseMatrix::zeros(x.n_cols(), 1);
        let mut p = ws.take_matrix(x.n_rows(), 1);
        let mut grad = ws.take_matrix(x.n_cols(), 1);
        self.loss_history.clear();
        let mut outcome = Ok(());
        for epoch in 0..self.config.epochs {
            x.mul_right_into(&theta, &mut p, ws)?; // p = Xθ
            p.map_inplace(sigmoid); // p = σ(Xθ)
                                    // Cross-entropy loss with clamping for numeric safety.
            let loss = -y
                .as_slice()
                .iter()
                .zip(p.as_slice())
                .map(|(&yi, &pi)| {
                    let pi = pi.clamp(1e-12, 1.0 - 1e-12);
                    yi * pi.ln() + (1.0 - yi) * (1.0 - pi).ln()
                })
                .sum::<f64>()
                / n;
            if !loss.is_finite() {
                outcome = Err(MlError::Diverged { epoch });
                break;
            }
            self.loss_history.push(loss);
            p.sub_assign(y)?; // p = σ(Xθ) − y, the residual
            x.t_mul_into(&p, &mut grad, ws)?;
            if self.config.l2 > 0.0 {
                grad.axpy_assign(self.config.l2, &theta)?;
            }
            theta.axpy_assign(-self.config.learning_rate / n, &grad)?;
        }
        ws.give_matrix(p);
        ws.give_matrix(grad);
        outcome?;
        self.theta = Some(theta);
        Ok(())
    }

    /// Predicted probabilities `σ(Xθ)`.
    ///
    /// # Errors
    /// [`MlError::NotFitted`] before `fit`, or shape mismatch.
    pub fn predict_proba<L: LinOps>(&self, x: &L) -> Result<Vec<f64>> {
        let theta = self.theta.as_ref().ok_or(MlError::NotFitted)?;
        Ok(x.mul_right(theta)?.map(sigmoid).into_vec())
    }

    /// Hard 0/1 predictions at threshold 0.5.
    ///
    /// # Errors
    /// Same as [`Self::predict_proba`].
    pub fn predict<L: LinOps>(&self, x: &L) -> Result<Vec<f64>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect())
    }

    /// The fitted coefficient vector.
    pub fn coefficients(&self) -> Option<&DenseMatrix> {
        self.theta.as_ref()
    }

    /// Per-epoch cross-entropy loss.
    pub fn loss_history(&self) -> &[f64] {
        &self.loss_history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Linearly separable data: label = 1 iff x₀ + x₁ > 0.
    fn separable(n: usize, seed: u64) -> (DenseMatrix, DenseMatrix) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = DenseMatrix::random_uniform(n, 2, -1.0, 1.0, &mut rng);
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if x.get(i, 0) + x.get(i, 1) > 0.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        (x, DenseMatrix::column_vector(&y))
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = separable(300, 1);
        let mut model = LogisticRegression::new(LogRegConfig {
            epochs: 500,
            learning_rate: 1.0,
            l2: 0.0,
        });
        model.fit(&x, &y).unwrap();
        let pred = model.predict(&x).unwrap();
        let acc = crate::metrics::accuracy(&pred, y.as_slice());
        assert!(acc > 0.95, "accuracy {acc} too low");
    }

    #[test]
    fn loss_decreases() {
        let (x, y) = separable(200, 2);
        let mut model = LogisticRegression::new(LogRegConfig::default());
        model.fit(&x, &y).unwrap();
        let h = model.loss_history();
        assert!(h.first().unwrap() > h.last().unwrap());
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (x, y) = separable(100, 3);
        let mut model = LogisticRegression::new(LogRegConfig::default());
        model.fit(&x, &y).unwrap();
        for p in model.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn rejects_non_binary_labels() {
        let (x, _) = separable(10, 4);
        let y = DenseMatrix::column_vector(&[0.0, 1.0, 2.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let mut model = LogisticRegression::new(LogRegConfig::default());
        assert!(matches!(
            model.fit(&x, &y).unwrap_err(),
            MlError::InvalidConfig(_)
        ));
    }

    #[test]
    fn l2_shrinks_coefficients() {
        let (x, y) = separable(200, 5);
        let mut plain = LogisticRegression::new(LogRegConfig::default());
        plain.fit(&x, &y).unwrap();
        let mut reg = LogisticRegression::new(LogRegConfig {
            l2: 10.0,
            ..LogRegConfig::default()
        });
        reg.fit(&x, &y).unwrap();
        assert!(
            reg.coefficients().unwrap().frobenius_norm()
                < plain.coefficients().unwrap().frobenius_norm()
        );
    }

    #[test]
    fn not_fitted_errors() {
        let (x, _) = separable(5, 6);
        let model = LogisticRegression::new(LogRegConfig::default());
        assert!(matches!(model.predict(&x).unwrap_err(), MlError::NotFitted));
    }

    #[test]
    fn sigmoid_extremes() {
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert_eq!(sigmoid(0.0), 0.5);
    }
}
