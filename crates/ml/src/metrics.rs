//! Evaluation metrics.

/// Mean squared error between predictions and targets.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mse: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    mse(pred, truth).sqrt()
}

/// Coefficient of determination `R²`; 1.0 is a perfect fit. Returns 0.0
/// when the target has zero variance.
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "r2: length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|&t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    1.0 - ss_res / ss_tot
}

/// Fraction of exactly-equal predictions (for 0/1 labels).
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn accuracy(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "accuracy: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / pred.len() as f64
}

/// Binary cross-entropy of predicted probabilities against 0/1 labels.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn log_loss(proba: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(proba.len(), truth.len(), "log_loss: length mismatch");
    if proba.is_empty() {
        return 0.0;
    }
    -proba
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            let p = p.clamp(1e-12, 1.0 - 1e-12);
            t * p.ln() + (1.0 - t) * (1.0 - p).ln()
        })
        .sum::<f64>()
        / proba.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_rmse() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert!((rmse(&[1.0, 2.0], &[1.0, 4.0]) - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn r2_perfect_and_baseline() {
        assert_eq!(r2(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 1.0);
        // Predicting the mean gives R² = 0.
        let r = r2(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(r.abs() < 1e-12);
        // Constant target: defined as 0.
        assert_eq!(r2(&[1.0, 1.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1.0, 0.0, 1.0], &[1.0, 1.0, 1.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn log_loss_behaviour() {
        // Confident correct prediction → tiny loss.
        assert!(log_loss(&[0.999], &[1.0]) < 0.01);
        // Confident wrong prediction → large loss.
        assert!(log_loss(&[0.001], &[1.0]) > 5.0);
        // Extreme probabilities are clamped, not infinite.
        assert!(log_loss(&[0.0], &[1.0]).is_finite());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mse(&[1.0], &[1.0, 2.0]);
    }
}
