//! `amalur-obs`: the workspace's unified metrics and span-tracing layer.
//!
//! The ROADMAP's north star is a production-scale serving system, and
//! production systems fail precisely where they are unobservable. This
//! crate gives every layer — serving, kernels, federated rounds, cost
//! calibration — one vocabulary for runtime measurement, under two hard
//! constraints inherited from the rest of the workspace:
//!
//! 1. **The record path is allocation-free and lock-free.** Recording a
//!    [`Counter`], [`Gauge`] or [`Histogram`] touches only pre-sized
//!    atomics, so instrumentation may legally run inside `_into`
//!    kernels and the zero-fresh-allocation serving steady state
//!    (`tests/zero_alloc.rs` pins this; `amalur-audit` enforces it
//!    statically via the `[no_alloc] record_fns` contract). All
//!    allocation happens at *registration* time, which hot paths never
//!    do — they hold handles.
//! 2. **Seeded paths stay deterministic.** Span timing is generic over
//!    a [`Clock`]: serving and bench paths use [`WallClock`]
//!    (`Instant`-backed), while seeded federated paths use
//!    [`VirtualClock`], whose time only moves when the orchestrator
//!    advances it — so instrumented runs remain bit-replayable and the
//!    `amalur-audit` `[determinism]` rule covers every obs module
//!    except the wall clock.
//!
//! # Architecture
//!
//! * [`MetricsRegistry`] — a named directory of metrics. Handles are
//!   either registry-owned (`Arc`) or mounted `'static`s (the kernel
//!   layer declares `static` counters and mounts them so GEMM dispatch
//!   needs no registry plumbing). Snapshots are deterministic
//!   (BTreeMap order) and dump to a stable JSON shape
//!   (`amalur-obs/v1`) that the bench bins embed in `BENCH_*.json`.
//! * [`Counter`] — monotone, sharded across cache-line-padded atomics
//!   so concurrent workers do not serialize on one line.
//! * [`Gauge`] — last-value or high-water (`set_max`) semantics, e.g.
//!   workspace high-water marks.
//! * [`Histogram`] — fixed-bucket, log-spaced (quarter-octave: bucket
//!   boundaries grow by ~1.19×), values exact below 4. `record` is two
//!   relaxed atomic adds. Snapshots expose bucket-resolution quantiles
//!   and merge associatively across worker shards.
//! * [`SpanGuard`] — scope timing with a fixed-depth thread-local
//!   stack; nested spans accumulate child time so a span can also
//!   report *exclusive* (self) time. Created via [`span`] (total time)
//!   or [`span_with_self`] (total + self).
//!
//! # Metric naming scheme
//!
//! `<layer>.<subsystem>.<metric>[_<unit>]`, all lower-snake within
//! segments: `serve.predict.latency_us`, `matrix.gemm.packed_dispatches`,
//! `federated.round.virtual_us`, `cost.calibrate.fact_epoch_ns`.
//! Dynamic name parts (dataset names) are their own trailing segment:
//! `serve.dataset.<name>.predicts`. Units are always in the name, never
//! implied.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metric;
mod registry;
mod span;
mod vtime;
mod wall;

pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricHandle, MetricsRegistry, MetricsSnapshot};
pub use span::{span, span_depth, span_with_self, Clock, SpanGuard};
pub use vtime::VirtualClock;
pub use wall::WallClock;
