//! The three metric primitives: counters, gauges, histograms.
//!
//! All record paths are allocation-free and lock-free (relaxed atomics
//! only), so they may run inside `_into` kernels and the serving steady
//! state. Construction is `const`, so layers without registry plumbing
//! (the GEMM dispatcher) can declare metrics as `static`s and mount
//! them into a [`crate::MetricsRegistry`] later.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shards per [`Counter`] (power of two).
const SHARDS: usize = 8;

/// Number of histogram buckets: values are exact below 4, then
/// quarter-octave log-spaced up to 2⁴⁰ (≈ 13 days in µs); larger values
/// clamp into the last bucket.
pub const BUCKETS: usize = 160;

/// A cache-line-padded atomic, so counter shards on different lines
/// never false-share.
#[repr(align(64))]
#[derive(Debug)]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    const fn new() -> Self {
        Self(AtomicU64::new(0))
    }
}

/// This thread's shard index (assigned once, on first record).
fn shard() -> usize {
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            s.set(v);
            v
        }
    })
}

/// A monotone counter, sharded across padded atomics so racing workers
/// do not serialize on one cache line.
#[derive(Debug)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A zeroed counter (usable in `static`s).
    pub const fn new() -> Self {
        // One atomic per slot; the repeat expression is a fresh value
        // each time, not a shared one.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: PaddedU64 = PaddedU64::new();
        Self {
            shards: [ZERO; SHARDS],
        }
    }

    /// Adds one. Allocation-free and lock-free.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Allocation-free and lock-free.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A last-value / high-water gauge.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge (usable in `static`s).
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrites the value. Allocation-free and lock-free.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger (high-water-mark semantics).
    /// Allocation-free and lock-free.
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for `v`: exact below 4, then quarter-octave log-spaced
/// (each octave `[2ᵉ, 2ᵉ⁺¹)` splits into 4 sub-buckets), clamped into
/// the last bucket.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize; // floor(log2 v) ≥ 2
        let sub = ((v >> (e - 2)) & 3) as usize;
        (4 * (e - 1) + sub).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `idx` (the smallest value that lands
/// in it).
pub(crate) fn bucket_lower(idx: usize) -> u64 {
    if idx < 4 {
        idx as u64
    } else {
        let e = idx / 4 + 1;
        let sub = (idx % 4) as u64;
        (1u64 << e) + sub * (1u64 << (e - 2))
    }
}

/// Exclusive upper bound of bucket `idx` (`u64::MAX` for the clamp
/// bucket).
pub(crate) fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(idx + 1)
    }
}

/// A fixed-bucket, log-spaced histogram of `u64` samples (latencies in
/// µs, batch widths, byte counts, …).
///
/// `record` is two relaxed atomic adds — allocation-free, lock-free,
/// wait-free. Quantile estimates from a snapshot are exact below 4 and
/// within one quarter-octave bucket (≤ [`Histogram::RESOLUTION`]×)
/// above.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// Worst-case relative bucket resolution: an estimate read off a
    /// bucket boundary is at most this factor away from the true
    /// sample.
    pub const RESOLUTION: f64 = 1.25;

    /// An empty histogram (usable in `static`s).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Allocation-free and lock-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Folds a previously taken snapshot into this histogram — the
    /// export path for histograms collected outside a registry (e.g. a
    /// federated run's virtual round durations) that should appear in a
    /// registry dump.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for (dst, &c) in self.buckets.iter().zip(&snap.buckets) {
            if c > 0 {
                dst.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// An owned copy of a [`Histogram`]'s state: quantiles, merging,
/// serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity element of [`Self::merge`]).
    pub fn empty() -> Self {
        Self {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Bucket-resolution quantile estimate: the largest value that
    /// could have landed in the bucket holding the `p`-quantile sample
    /// (exact below 4; within [`Histogram::RESOLUTION`]× above).
    /// Returns 0 for an empty snapshot.
    pub fn quantile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).saturating_sub(1);
            }
        }
        bucket_upper(BUCKETS - 1).saturating_sub(1)
    }

    /// Conservative lower bound for the `p`-quantile: the lower edge of
    /// the bucket holding that sample.
    pub fn quantile_lower(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower(idx);
            }
        }
        bucket_lower(BUCKETS - 1)
    }

    /// Accumulates `other` into `self`. Merging is commutative and
    /// associative (pinned by property tests), so per-shard snapshots
    /// combine into a fleet-wide view in any order. Totals wrap on
    /// overflow, matching the live histogram's relaxed `fetch_add`s —
    /// never a panic in a metrics path.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst = dst.wrapping_add(*src);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Non-empty buckets as `(inclusive lower bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_shards() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let g = Gauge::new();
        g.set(10);
        g.set_max(5);
        assert_eq!(g.get(), 10);
        g.set_max(99);
        assert_eq!(g.get(), 99);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn bucket_bounds_tile_the_line() {
        // Buckets partition [0, ∞): upper(i) == lower(i+1), monotone.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_upper(i), bucket_lower(i + 1), "bucket {i}");
            assert!(bucket_lower(i) < bucket_lower(i + 1));
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..4u64 {
            let idx = bucket_index(v);
            assert_eq!(bucket_lower(idx), v);
            assert_eq!(bucket_upper(idx), v + 1);
        }
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 1100);
        // p50 sample is 30: the estimate brackets it within a bucket.
        let est = s.quantile(0.5);
        assert!(s.quantile_lower(0.5) <= 30 && 30 <= est, "est {est}");
        assert!(est as f64 <= 30.0 * Histogram::RESOLUTION);
        // p100 lands in 1000's bucket.
        assert!(s.quantile_lower(1.0) <= 1000 && 1000 <= s.quantile(1.0));
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(7);
        b.record(7);
        b.record(9000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 7 + 7 + 9000);
        assert_eq!(m.nonzero_buckets()[0].1, 2);
    }
}
