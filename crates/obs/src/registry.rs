//! The named metric directory and its deterministic snapshot/dump.

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// A handle to a registered metric: either registry-owned (`Arc`) or a
/// mounted `'static` (the kernel layers declare `static` metrics and
/// mount them, so recording needs no registry plumbing at all).
#[derive(Debug)]
pub struct MetricHandle<T: 'static> {
    repr: Repr<T>,
}

#[derive(Debug)]
enum Repr<T: 'static> {
    Owned(Arc<T>),
    Static(&'static T),
}

impl<T> Clone for MetricHandle<T> {
    fn clone(&self) -> Self {
        Self {
            repr: match &self.repr {
                Repr::Owned(a) => Repr::Owned(Arc::clone(a)),
                Repr::Static(s) => Repr::Static(s),
            },
        }
    }
}

impl<T> std::ops::Deref for MetricHandle<T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.repr {
            Repr::Owned(a) => a,
            Repr::Static(s) => s,
        }
    }
}

impl<T> MetricHandle<T> {
    fn owned(v: T) -> Self {
        Self {
            repr: Repr::Owned(Arc::new(v)),
        }
    }

    fn of_static(v: &'static T) -> Self {
        Self {
            repr: Repr::Static(v),
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(MetricHandle<Counter>),
    Gauge(MetricHandle<Gauge>),
    Histogram(MetricHandle<Histogram>),
}

/// A directory of named metrics (see the crate docs for the naming
/// scheme).
///
/// Registration (`counter`/`gauge`/`histogram`/`mount_*`) takes a lock
/// and may allocate; hot paths therefore register once and keep the
/// returned handle. Recording through a handle never touches the
/// registry. Asking for an existing name returns the existing metric;
/// asking with a *mismatched kind* returns a fresh detached handle
/// (recordable but never dumped) so the record path stays infallible.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Slot>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Slot>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Gets or registers the counter `name`.
    pub fn counter(&self, name: &str) -> MetricHandle<Counter> {
        let mut map = self.lock();
        match map.get(name) {
            Some(Slot::Counter(h)) => h.clone(),
            Some(_) => MetricHandle::owned(Counter::new()),
            None => {
                let h = MetricHandle::owned(Counter::new());
                map.insert(name.to_owned(), Slot::Counter(h.clone()));
                h
            }
        }
    }

    /// Gets or registers the gauge `name`.
    pub fn gauge(&self, name: &str) -> MetricHandle<Gauge> {
        let mut map = self.lock();
        match map.get(name) {
            Some(Slot::Gauge(h)) => h.clone(),
            Some(_) => MetricHandle::owned(Gauge::new()),
            None => {
                let h = MetricHandle::owned(Gauge::new());
                map.insert(name.to_owned(), Slot::Gauge(h.clone()));
                h
            }
        }
    }

    /// Gets or registers the histogram `name`.
    pub fn histogram(&self, name: &str) -> MetricHandle<Histogram> {
        let mut map = self.lock();
        match map.get(name) {
            Some(Slot::Histogram(h)) => h.clone(),
            Some(_) => MetricHandle::owned(Histogram::new()),
            None => {
                let h = MetricHandle::owned(Histogram::new());
                map.insert(name.to_owned(), Slot::Histogram(h.clone()));
                h
            }
        }
    }

    /// Mounts a `static` counter under `name` (first registration wins).
    pub fn mount_counter(&self, name: &str, c: &'static Counter) {
        self.lock()
            .entry(name.to_owned())
            .or_insert(Slot::Counter(MetricHandle::of_static(c)));
    }

    /// Mounts a `static` gauge under `name` (first registration wins).
    pub fn mount_gauge(&self, name: &str, g: &'static Gauge) {
        self.lock()
            .entry(name.to_owned())
            .or_insert(Slot::Gauge(MetricHandle::of_static(g)));
    }

    /// Mounts a `static` histogram under `name` (first registration
    /// wins).
    pub fn mount_histogram(&self, name: &str, h: &'static Histogram) {
        self.lock()
            .entry(name.to_owned())
            .or_insert(Slot::Histogram(MetricHandle::of_static(h)));
    }

    /// A point-in-time copy of every registered metric, in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, slot) in map.iter() {
            match slot {
                Slot::Counter(h) => {
                    snap.counters.insert(name.clone(), h.get());
                }
                Slot::Gauge(h) => {
                    snap.gauges.insert(name.clone(), h.get());
                }
                Slot::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A deterministic (name-ordered) copy of a registry's state.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter total, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The stable `amalur-obs/v1` JSON dump, indented by `indent`
    /// spaces so bench bins can embed it inside their `BENCH_*.json`
    /// files. Keys appear in name order; histograms carry count, sum,
    /// mean, p50/p95/p99 estimates and their non-empty buckets as
    /// `[lower_bound, count]` pairs.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("{pad}  \"schema\": \"amalur-obs/v1\",\n"));

        out.push_str(&format!("{pad}  \"counters\": {{"));
        push_scalar_map(&mut out, &pad, &self.counters);
        out.push_str("},\n");

        out.push_str(&format!("{pad}  \"gauges\": {{"));
        push_scalar_map(&mut out, &pad, &self.gauges);
        out.push_str("},\n");

        out.push_str(&format!("{pad}  \"histograms\": {{"));
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(lo, c)| format!("[{lo}, {c}]"))
                .collect();
            out.push_str(&format!(
                "\n{pad}    \"{name}\": {{ \"count\": {}, \"sum\": {}, \"mean\": {:.3}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}] }}",
                h.count(),
                h.sum(),
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                buckets.join(", ")
            ));
        }
        if !first {
            out.push_str(&format!("\n{pad}  "));
        }
        out.push_str("}\n");
        out.push_str(&format!("{pad}}}"));
        out
    }
}

/// Appends `"name": value` pairs for a scalar map, matching the
/// histogram block's layout.
fn push_scalar_map(out: &mut String, pad: &str, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (name, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n{pad}    \"{name}\": {v}"));
    }
    if !first {
        out.push_str(&format!("\n{pad}  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_metric() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.calls");
        let b = reg.counter("x.calls");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("x.calls"), Some(2));
    }

    #[test]
    fn kind_mismatch_yields_detached_handle() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        let g = reg.gauge("x"); // wrong kind: detached
        g.set(7);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), Some(0));
        assert_eq!(snap.gauge("x"), None);
    }

    #[test]
    fn mounted_statics_appear_in_snapshot() {
        static C: Counter = Counter::new();
        static H: Histogram = Histogram::new();
        let reg = MetricsRegistry::new();
        reg.mount_counter("kernel.calls", &C);
        reg.mount_histogram("kernel.ns", &H);
        C.add(3);
        H.record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("kernel.calls"), Some(3));
        assert_eq!(snap.histogram("kernel.ns").map(|h| h.count()), Some(1));
    }

    #[test]
    fn json_dump_is_stable_and_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").inc();
        reg.gauge("z.gauge").set(9);
        reg.histogram("m.hist").record(5);
        let json = reg.snapshot().to_json(0);
        let a = json.find("a.first").expect("a.first present");
        let b = json.find("b.second").expect("b.second present");
        assert!(a < b, "counters serialize in name order");
        assert!(json.contains("\"schema\": \"amalur-obs/v1\""));
        assert!(json.contains("\"p99\":"));
        assert_eq!(reg.snapshot().to_json(0), json, "dump is deterministic");
    }

    #[test]
    fn empty_registry_dumps_empty_maps() {
        let json = MetricsRegistry::new().snapshot().to_json(2);
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }
}
