//! Span timing: scope guards over an injectable clock.
//!
//! A [`SpanGuard`] measures the time between its creation and its drop
//! against a [`Clock`] and records the elapsed µs into a
//! [`Histogram`]. A fixed-depth thread-local stack tracks nesting, so
//! a span can also record its *exclusive* time (total minus nested
//! spans) — without any allocation on the record path.
//!
//! Which clock to use is a correctness decision, not a style one:
//! serving and bench paths use [`crate::WallClock`]; seeded federated
//! paths MUST use [`crate::VirtualClock`] so instrumented runs stay
//! bit-replayable (the workspace determinism contract; enforced by
//! `amalur-audit`, which covers this module but not the wall clock).

use crate::metric::Histogram;
use std::cell::{Cell, RefCell};

/// A monotone µs clock. Implemented by [`crate::WallClock`] (real
/// time) and [`crate::VirtualClock`] (simulated time for seeded
/// paths).
pub trait Clock {
    /// Microseconds since the clock's origin.
    fn now_us(&self) -> u64;
}

/// Maximum tracked nesting depth; deeper spans still record their
/// total time but drop out of exclusive-time accounting.
const MAX_DEPTH: usize = 32;

thread_local! {
    /// Per-depth accumulated child time (µs).
    static CHILD_US: RefCell<[u64; MAX_DEPTH]> = const { RefCell::new([0; MAX_DEPTH]) };
    /// Current nesting depth on this thread.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn span_depth() -> usize {
    DEPTH.get()
}

/// Starts a span recording total elapsed µs into `total` when dropped.
pub fn span<'a>(clock: &'a dyn Clock, total: &'a Histogram) -> SpanGuard<'a> {
    SpanGuard::start(clock, total, None)
}

/// Starts a span recording total elapsed µs into `total` and exclusive
/// (total minus nested spans) µs into `exclusive` when dropped.
pub fn span_with_self<'a>(
    clock: &'a dyn Clock,
    total: &'a Histogram,
    exclusive: &'a Histogram,
) -> SpanGuard<'a> {
    SpanGuard::start(clock, total, Some(exclusive))
}

/// An in-flight span; records on drop. Spans on one thread must nest
/// (LIFO drop order), which scoped guards guarantee by construction.
pub struct SpanGuard<'a> {
    clock: &'a dyn Clock,
    total: &'a Histogram,
    exclusive: Option<&'a Histogram>,
    start: u64,
    /// This span's frame index, or `MAX_DEPTH` when the stack
    /// overflowed (total time still records; nesting accounting stops).
    frame: usize,
}

impl<'a> SpanGuard<'a> {
    fn start(
        clock: &'a dyn Clock,
        total: &'a Histogram,
        exclusive: Option<&'a Histogram>,
    ) -> SpanGuard<'a> {
        let depth = DEPTH.get();
        let frame = if depth < MAX_DEPTH {
            CHILD_US.with(|c| c.borrow_mut()[depth] = 0);
            DEPTH.set(depth + 1);
            depth
        } else {
            MAX_DEPTH
        };
        SpanGuard {
            clock,
            total,
            exclusive,
            start: clock.now_us(),
            frame,
        }
    }

    /// Elapsed µs so far (the span keeps running).
    pub fn elapsed_us(&self) -> u64 {
        self.clock.now_us().saturating_sub(self.start)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.clock.now_us().saturating_sub(self.start);
        self.total.record(elapsed);
        if self.frame < MAX_DEPTH {
            DEPTH.set(self.frame);
            let child = CHILD_US.with(|c| {
                let frames = c.borrow();
                frames[self.frame]
            });
            if let Some(ex) = self.exclusive {
                ex.record(elapsed.saturating_sub(child));
            }
            if self.frame > 0 {
                CHILD_US.with(|c| c.borrow_mut()[self.frame - 1] += elapsed);
            }
        } else if let Some(ex) = self.exclusive {
            ex.record(elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VirtualClock;

    #[test]
    fn span_records_virtual_elapsed() {
        let clock = VirtualClock::new();
        let h = Histogram::new();
        {
            let _g = span(&clock, &h);
            clock.advance_us(250);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum(), 250);
    }

    #[test]
    fn nested_spans_track_depth_and_self_time() {
        let clock = VirtualClock::new();
        let outer_total = Histogram::new();
        let outer_self = Histogram::new();
        let inner = Histogram::new();
        assert_eq!(span_depth(), 0);
        {
            let _o = span_with_self(&clock, &outer_total, &outer_self);
            assert_eq!(span_depth(), 1);
            clock.advance_us(100);
            {
                let _i = span(&clock, &inner);
                assert_eq!(span_depth(), 2);
                clock.advance_us(40);
            }
            clock.advance_us(10);
        }
        assert_eq!(span_depth(), 0);
        assert_eq!(inner.snapshot().sum(), 40);
        assert_eq!(outer_total.snapshot().sum(), 150);
        // Exclusive time = 150 total − 40 in the nested span.
        assert_eq!(outer_self.snapshot().sum(), 110);
    }

    #[test]
    fn overflow_beyond_max_depth_still_records_totals() {
        let clock = VirtualClock::new();
        let h = Histogram::new();
        fn deep(clock: &VirtualClock, h: &Histogram, n: usize) {
            let _g = span(clock, h);
            clock.advance_us(1);
            if n > 0 {
                deep(clock, h, n - 1);
            }
        }
        deep(&clock, &h, 40);
        assert_eq!(h.snapshot().count(), 41);
        assert_eq!(span_depth(), 0);
    }
}
