//! Virtual time for seeded, bit-replayable paths.

use crate::span::Clock;
use std::sync::atomic::{AtomicU64, Ordering};

/// A manually advanced µs clock: time moves only when the owning
/// orchestrator says so, so instrumented seeded runs (federated rounds,
/// generated scenarios) stay deterministic. The workspace determinism
/// rule requires this clock — never [`crate::WallClock`] — anywhere a
/// seed pins the trajectory.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_us: AtomicU64,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub const fn new() -> Self {
        Self {
            now_us: AtomicU64::new(0),
        }
    }

    /// Moves time forward by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.now_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Moves time forward by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.advance_us(ms.saturating_mul(1000));
    }

    /// Jumps to an absolute time in µs (clamped upward: virtual time
    /// never runs backwards).
    pub fn set_us(&self, us: u64) {
        self.now_us.fetch_max(us, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_deterministically() {
        let c = VirtualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_us(5);
        c.advance_ms(2);
        assert_eq!(c.now_us(), 2005);
        c.set_us(1000); // backwards jump ignored
        assert_eq!(c.now_us(), 2005);
        c.set_us(3000);
        assert_eq!(c.now_us(), 3000);
    }
}
