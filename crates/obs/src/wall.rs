//! Real time, for paths where wall-clock measurement is the point.
//!
//! This module is deliberately OUTSIDE the `amalur-audit`
//! `[determinism]` coverage of this crate: it is the one place obs
//! reads the ambient clock, and seeded paths must not touch it (use
//! [`crate::VirtualClock`] there instead).

use crate::span::Clock;
use std::time::Instant;

/// An `Instant`-backed µs clock measuring from its construction.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        // Saturating: a u64 of µs overflows after ~584k years.
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
