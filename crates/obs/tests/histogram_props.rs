//! Property tests pinning the histogram contract: every sample lands in
//! a bucket that actually contains it (within the advertised
//! resolution), snapshot merging is a commutative monoid — so per-shard
//! snapshots combine into a fleet view in any order — and concurrent
//! recording loses nothing.

use amalur_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Smallest value of the final clamp bucket: above this the histogram
/// deliberately gives up on resolution (values this large are hours in
/// µs — any answer reads as "off the scale").
const CLAMP_LOWER: u64 = (1 << 40) + 3 * (1 << 38);

/// Deterministic sample stream (splitmix64) spanning the exact range
/// below 4, mid-size values, and the clamp bucket.
fn samples(mut seed: u64, len: usize) -> Vec<u64> {
    (0..len)
        .map(|_| {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            match z % 3 {
                0 => z % 4,
                1 => z % 100_000,
                _ => z,
            }
        })
        .collect()
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// A lone sample's bucket must contain it: the p100 band
    /// `[quantile_lower, quantile]` brackets the value, exactly below 4
    /// and within one RESOLUTION factor below the clamp bucket.
    #[test]
    fn bucket_boundaries_bracket_the_sample(v in 0u64..u64::MAX) {
        let snap = snapshot_of(&[v]);
        prop_assert_eq!(snap.count(), 1);
        prop_assert_eq!(snap.sum(), v);
        let lo = snap.quantile_lower(1.0);
        let hi = snap.quantile(1.0);
        prop_assert!(lo <= v, "lower edge {} above sample {}", lo, v);
        prop_assert!(v <= hi, "upper edge {} below sample {}", hi, v);
        if v < 4 {
            prop_assert_eq!(lo, v);
            prop_assert_eq!(hi, v);
        } else if v < CLAMP_LOWER {
            // Exclusive upper bound hi+1 within one quarter-octave of
            // the inclusive lower edge.
            prop_assert!(
                (hi as f64 + 1.0) <= lo as f64 * Histogram::RESOLUTION,
                "bucket [{}, {}] wider than RESOLUTION at {}", lo, hi, v
            );
        }
    }

    /// Merging is associative and commutative with `empty` as identity,
    /// so shard snapshots can be folded in any order — and folding
    /// shards equals recording everything into one histogram.
    #[test]
    fn merge_is_a_commutative_monoid(
        seed_a in 0u64..u64::MAX, len_a in 0usize..40,
        seed_b in 0u64..u64::MAX, len_b in 0usize..40,
        seed_c in 0u64..u64::MAX, len_c in 0usize..40,
    ) {
        let (a, b, c) = (samples(seed_a, len_a), samples(seed_b, len_b), samples(seed_c, len_c));
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_tail = sb.clone();
        right_tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        let mut swapped = sc.clone();
        swapped.merge(&sa);
        swapped.merge(&sb);
        prop_assert_eq!(&left, &swapped);

        let mut with_identity = HistogramSnapshot::empty();
        with_identity.merge(&left);
        prop_assert_eq!(&left, &with_identity);

        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    /// `Histogram::merge_snapshot` (the live-histogram fold used by
    /// registry export) agrees with snapshot-level merge.
    #[test]
    fn merge_snapshot_matches_snapshot_merge(
        seed_a in 0u64..u64::MAX, len_a in 0usize..40,
        seed_b in 0u64..u64::MAX, len_b in 0usize..40,
    ) {
        let (a, b) = (samples(seed_a, len_a), samples(seed_b, len_b));
        let live = Histogram::new();
        for &v in &a {
            live.record(v);
        }
        live.merge_snapshot(&snapshot_of(&b));

        let mut expected = snapshot_of(&a);
        expected.merge(&snapshot_of(&b));
        prop_assert_eq!(live.snapshot(), expected);
    }
}

/// Eight threads hammering one histogram must lose no counts and no
/// sum: `record` is two relaxed fetch_adds, each individually atomic.
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let hist = std::sync::Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = std::sync::Arc::clone(&hist);
            std::thread::spawn(move || {
                // Distinct per-thread value streams spanning many
                // buckets, including the exact range below 4.
                for i in 0..PER_THREAD {
                    hist.record((i * 7 + t) % 5_000);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recorder thread");
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (i * 7 + t) % 5_000))
        .sum();
    assert_eq!(snap.sum(), expected_sum);
}
