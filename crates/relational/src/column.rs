//! Typed columnar storage.

use crate::{DataType, RelationalError, Result, Value};

/// A typed, nullable column of values.
///
/// Storage is typed per column (not `Vec<Value>`) so numeric columns can
/// be handed to the matrix layer without per-cell enum matching.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column.
    Int64(Vec<Option<i64>>),
    /// Float column.
    Float64(Vec<Option<f64>>),
    /// String column.
    Utf8(Vec<Option<String>>),
    /// Boolean column.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int64 => Column::Int64(Vec::new()),
            DataType::Float64 => Column::Float64(Vec::new()),
            DataType::Utf8 => Column::Utf8(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// Creates an empty column with reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Int64 => Column::Int64(Vec::with_capacity(cap)),
            DataType::Float64 => Column::Float64(Vec::with_capacity(cap)),
            DataType::Utf8 => Column::Utf8(Vec::with_capacity(cap)),
            DataType::Bool => Column::Bool(Vec::with_capacity(cap)),
        }
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Utf8(_) => DataType::Utf8,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Number of values (including NULLs).
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Utf8(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// `true` when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL entries.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int64(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Float64(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Utf8(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Fraction of entries that are NULL (0.0 for empty columns).
    pub fn null_ratio(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.null_count() as f64 / self.len() as f64
        }
    }

    /// Reads the value at `row` as a dynamic [`Value`].
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int64(v) => v[row].map_or(Value::Null, Value::Int),
            Column::Float64(v) => v[row].map_or(Value::Null, Value::Float),
            Column::Utf8(v) => v[row].clone().map_or(Value::Null, Value::Str),
            Column::Bool(v) => v[row].map_or(Value::Null, Value::Bool),
        }
    }

    /// Appends a dynamic [`Value`], coercing `Int` into `Float64` columns.
    ///
    /// # Errors
    /// Returns [`RelationalError::TypeMismatch`] when the value is not
    /// admissible for this column's type. The `column` field of the error
    /// is filled by the caller via [`Result::map_err`]; here it is `"?"`.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, &value) {
            (Column::Int64(v), Value::Int(i)) => v.push(Some(*i)),
            (Column::Int64(v), Value::Null) => v.push(None),
            (Column::Float64(v), Value::Float(f)) => v.push(Some(*f)),
            (Column::Float64(v), Value::Int(i)) => v.push(Some(*i as f64)),
            (Column::Float64(v), Value::Null) => v.push(None),
            (Column::Utf8(v), Value::Str(s)) => v.push(Some(s.clone())),
            (Column::Utf8(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(b)) => v.push(Some(*b)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (col, value) => {
                return Err(RelationalError::TypeMismatch {
                    column: "?".to_owned(),
                    expected: col.dtype().name(),
                    found: format!("{value:?}"),
                })
            }
        }
        Ok(())
    }

    /// Reads the value at `row` as `f64` (NULL → `None`; strings → error).
    pub fn get_f64(&self, row: usize) -> Result<Option<f64>> {
        match self {
            Column::Int64(v) => Ok(v[row].map(|i| i as f64)),
            Column::Float64(v) => Ok(v[row]),
            Column::Bool(v) => Ok(v[row].map(|b| if b { 1.0 } else { 0.0 })),
            Column::Utf8(_) => Err(RelationalError::NonNumericColumn("?".to_owned())),
        }
    }

    /// Gathers rows by index into a new column (indices must be in range).
    pub fn gather(&self, rows: &[usize]) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(rows.iter().map(|&r| v[r]).collect()),
            Column::Float64(v) => Column::Float64(rows.iter().map(|&r| v[r]).collect()),
            Column::Utf8(v) => Column::Utf8(rows.iter().map(|&r| v[r].clone()).collect()),
            Column::Bool(v) => Column::Bool(rows.iter().map(|&r| v[r]).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::empty(DataType::Int64);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut c = Column::empty(DataType::Float64);
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.get(0), Value::Float(3.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::empty(DataType::Int64);
        assert!(c.push(Value::Float(1.5)).is_err());
        assert!(c.push(Value::Str("x".into())).is_err());
        let mut s = Column::empty(DataType::Utf8);
        assert!(s.push(Value::Bool(true)).is_err());
    }

    #[test]
    fn null_counting() {
        let mut c = Column::empty(DataType::Utf8);
        c.push(Value::Str("a".into())).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.null_count(), 2);
        assert!((c.null_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(Column::empty(DataType::Int64).null_ratio(), 0.0);
    }

    #[test]
    fn get_f64_conversions() {
        let mut c = Column::empty(DataType::Bool);
        c.push(Value::Bool(true)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.get_f64(0).unwrap(), Some(1.0));
        assert_eq!(c.get_f64(1).unwrap(), None);
        let mut s = Column::empty(DataType::Utf8);
        s.push(Value::Str("x".into())).unwrap();
        assert!(s.get_f64(0).is_err());
    }

    #[test]
    fn gather_reorders_and_duplicates() {
        let mut c = Column::empty(DataType::Int64);
        for i in 0..4 {
            c.push(Value::Int(i)).unwrap();
        }
        let g = c.gather(&[3, 0, 0]);
        assert_eq!(g.get(0), Value::Int(3));
        assert_eq!(g.get(1), Value::Int(0));
        assert_eq!(g.get(2), Value::Int(0));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn with_capacity_types() {
        for dt in [
            DataType::Int64,
            DataType::Float64,
            DataType::Utf8,
            DataType::Bool,
        ] {
            let c = Column::with_capacity(dt, 16);
            assert_eq!(c.dtype(), dt);
            assert!(c.is_empty());
        }
    }
}
