//! CSV import/export with type inference.
//!
//! Silos in practice expose their tables as files; this module lets the
//! examples and benchmarks round-trip [`Table`]s through CSV. The parser
//! handles RFC-4180 quoting (embedded commas, quotes, newlines) and infers
//! the narrowest column type over all rows (`Int64 → Float64 → Bool →
//! Utf8`, with empty cells as NULL).

use crate::{DataType, Field, RelationalError, Result, Schema, Table, Value};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Parses CSV text (first line = header) into a table named `name`.
///
/// # Errors
/// Returns [`RelationalError::Parse`] on malformed quoting or ragged rows.
pub fn read_csv_str(name: &str, text: &str) -> Result<Table> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Err(RelationalError::Parse("empty CSV input".into()));
    }
    let header = records.remove(0);
    let arity = header.len();
    for (i, rec) in records.iter().enumerate() {
        if rec.len() != arity {
            return Err(RelationalError::Parse(format!(
                "row {} has {} fields, header has {arity}",
                i + 1,
                rec.len()
            )));
        }
    }
    let dtypes: Vec<DataType> = (0..arity)
        .map(|c| infer_type(records.iter().map(|r| r[c].as_str())))
        .collect();
    let schema = Schema::new(
        header
            .iter()
            .zip(&dtypes)
            .map(|(n, &t)| Field::new(n.clone(), t))
            .collect(),
    )?;
    let mut table = Table::empty(name, schema);
    for rec in &records {
        let row: Vec<Value> = rec
            .iter()
            .zip(&dtypes)
            .map(|(cell, &t)| parse_cell(cell, t))
            .collect::<Result<_>>()?;
        table.push_row(row)?;
    }
    Ok(table)
}

/// Reads a CSV file into a table named after the file stem.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Table> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("table")
        .to_owned();
    let text = std::fs::read_to_string(path)?;
    read_csv_str(&name, &text)
}

/// Serializes a table to CSV text.
pub fn to_csv_string(table: &Table) -> String {
    let mut out = String::new();
    let names = table.schema().names();
    out.push_str(&escape_row(&names));
    out.push('\n');
    for i in 0..table.num_rows() {
        let cells: Vec<String> = table.row(i).iter().map(ToString::to_string).collect();
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        out.push_str(&escape_row(&refs));
        out.push('\n');
    }
    out
}

/// Writes a table to a CSV file.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(to_csv_string(table).as_bytes())?;
    w.flush()?;
    Ok(())
}

fn escape_row(cells: &[&str]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                (*c).to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Splits CSV text into records of unquoted field strings.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {} // tolerate CRLF
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(RelationalError::Parse("unterminated quoted field".into()));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Infers the narrowest type that admits every non-empty cell.
fn infer_type<'a>(cells: impl Iterator<Item = &'a str>) -> DataType {
    let mut could_int = true;
    let mut could_float = true;
    let mut could_bool = true;
    let mut saw_value = false;
    for cell in cells {
        if cell.is_empty() {
            continue;
        }
        saw_value = true;
        if could_int && cell.parse::<i64>().is_err() {
            could_int = false;
        }
        if could_float && cell.parse::<f64>().is_err() {
            could_float = false;
        }
        if could_bool && !matches!(cell, "true" | "false") {
            could_bool = false;
        }
    }
    if !saw_value {
        return DataType::Utf8; // all-NULL column defaults to string
    }
    if could_int {
        DataType::Int64
    } else if could_float {
        DataType::Float64
    } else if could_bool {
        DataType::Bool
    } else {
        DataType::Utf8
    }
}

fn parse_cell(cell: &str, dtype: DataType) -> Result<Value> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    let bad = |what: &str| RelationalError::Parse(format!("cannot parse {cell:?} as {what}"));
    Ok(match dtype {
        DataType::Int64 => Value::Int(cell.parse().map_err(|_| bad("Int64"))?),
        DataType::Float64 => Value::Float(cell.parse().map_err(|_| bad("Float64"))?),
        DataType::Bool => Value::Bool(cell.parse().map_err(|_| bad("Bool"))?),
        DataType::Utf8 => Value::Str(cell.to_owned()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_csv() {
        let t = read_csv_str("t", "id,name,score\n1,Jack,3.5\n2,Sam,4.0\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().field("id").unwrap().dtype, DataType::Int64);
        assert_eq!(t.schema().field("name").unwrap().dtype, DataType::Utf8);
        assert_eq!(t.schema().field("score").unwrap().dtype, DataType::Float64);
        assert_eq!(t.value(0, "name").unwrap(), "Jack".into());
    }

    #[test]
    fn empty_cells_become_null() {
        let t = read_csv_str("t", "a,b\n1,\n,2\n").unwrap();
        assert_eq!(t.value(0, "b").unwrap(), Value::Null);
        assert_eq!(t.value(1, "a").unwrap(), Value::Null);
    }

    #[test]
    fn type_promotion_int_to_float_to_string() {
        let t = read_csv_str("t", "x\n1\n2.5\n").unwrap();
        assert_eq!(t.schema().field("x").unwrap().dtype, DataType::Float64);
        let t = read_csv_str("t", "x\n1\nhello\n").unwrap();
        assert_eq!(t.schema().field("x").unwrap().dtype, DataType::Utf8);
    }

    #[test]
    fn bool_inference() {
        let t = read_csv_str("t", "flag\ntrue\nfalse\n").unwrap();
        assert_eq!(t.schema().field("flag").unwrap().dtype, DataType::Bool);
        assert_eq!(t.value(0, "flag").unwrap(), Value::Bool(true));
    }

    #[test]
    fn quoted_fields() {
        let t = read_csv_str("t", "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.value(0, "a").unwrap(), "x,y".into());
        assert_eq!(t.value(0, "b").unwrap(), "he said \"hi\"".into());
    }

    #[test]
    fn quoted_newline() {
        let t = read_csv_str("t", "a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, "a").unwrap(), "line1\nline2".into());
    }

    #[test]
    fn crlf_tolerated() {
        let t = read_csv_str("t", "a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, "b").unwrap(), 2.into());
    }

    #[test]
    fn missing_trailing_newline() {
        let t = read_csv_str("t", "a\n1").unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(read_csv_str("t", "a,b\n1\n").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(read_csv_str("t", "a\n\"oops\n").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv_str("t", "").is_err());
    }

    #[test]
    fn roundtrip_through_string() {
        let text = "id,name\n1,Jack\n2,\"Sam, Jr.\"\n";
        let t = read_csv_str("t", text).unwrap();
        let back = to_csv_string(&t);
        let t2 = read_csv_str("t", &back).unwrap();
        assert_eq!(t.num_rows(), t2.num_rows());
        assert_eq!(t.value(1, "name").unwrap(), t2.value(1, "name").unwrap());
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("amalur_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("patients.csv");
        let t = read_csv_str("patients", "id,age\n1,20\n2,35\n").unwrap();
        write_csv(&t, &path).unwrap();
        let t2 = read_csv(&path).unwrap();
        assert_eq!(t2.name(), "patients");
        assert_eq!(t2.num_rows(), 2);
        assert_eq!(t2.value(1, "age").unwrap(), 35.into());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_null_column_is_utf8() {
        let t = read_csv_str("t", "a,b\n1,\n2,\n").unwrap();
        assert_eq!(t.schema().field("b").unwrap().dtype, DataType::Utf8);
    }
}
