//! Error type for relational operations.

use std::fmt;

/// Convenience alias for relational results.
pub type Result<T> = std::result::Result<T, RelationalError>;

/// Errors produced by the relational substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationalError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Expected data type (as rendered by `DataType::name`).
        expected: &'static str,
        /// What was actually supplied.
        found: String,
    },
    /// Row has a different arity than the schema.
    ArityMismatch {
        /// Number of fields in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// Two schemas are incompatible for the requested operation (e.g.
    /// union of tables with different columns).
    SchemaMismatch(String),
    /// Duplicate column name while constructing a schema.
    DuplicateColumn(String),
    /// Attempted to convert a non-numeric column to a matrix.
    NonNumericColumn(String),
    /// A NULL was encountered where a value is required.
    UnexpectedNull {
        /// Column name.
        column: String,
        /// Row index.
        row: usize,
    },
    /// Error parsing external data (CSV).
    Parse(String),
    /// I/O error (file read/write); stringified to keep the type `Clone`.
    Io(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            RelationalError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in column {column}: expected {expected}, found {found}"
            ),
            RelationalError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row arity {found} does not match schema arity {expected}"
                )
            }
            RelationalError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            RelationalError::DuplicateColumn(name) => {
                write!(f, "duplicate column name: {name}")
            }
            RelationalError::NonNumericColumn(name) => {
                write!(f, "column {name} is not numeric")
            }
            RelationalError::UnexpectedNull { column, row } => {
                write!(f, "unexpected NULL in column {column} at row {row}")
            }
            RelationalError::Parse(msg) => write!(f, "parse error: {msg}"),
            RelationalError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for RelationalError {}

impl From<std::io::Error> for RelationalError {
    fn from(e: std::io::Error) -> Self {
        RelationalError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            RelationalError::UnknownColumn("x".into()).to_string(),
            "unknown column: x"
        );
        assert!(RelationalError::ArityMismatch {
            expected: 3,
            found: 2
        }
        .to_string()
        .contains("arity 2"));
    }

    #[test]
    fn io_error_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: RelationalError = io.into();
        assert!(matches!(e, RelationalError::Io(_)));
    }
}
