//! Hash joins and union — the four dataset relationships of Table I.
//!
//! The paper's materialization strategy integrates silos with full outer
//! joins (Example 1), inner joins (Example 2), left joins (Example 3) and
//! unions (Example 4). The joins here use *DI-merge semantics*: columns
//! that appear in both inputs (the mapped columns of a natural join) are
//! **coalesced** into a single output column — left value when present,
//! right value otherwise — exactly how a data integration system merges
//! "the mapped columns and linked entities" (§I).

use crate::{Field, RelationalError, Result, Schema, Table, Value};
use std::collections::HashMap;

/// The join variant, mirroring Table I's dataset relationships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    /// Only rows matched on the key (Example 2).
    Inner,
    /// All left rows, plus right values where matched (Example 3).
    Left,
    /// All rows from both sides (Example 1).
    FullOuter,
}

/// Composite join key for a row: length-prefixed concatenation of the
/// normalized key bytes. `None` when any key component is NULL (SQL
/// semantics: NULL matches nothing).
fn row_key(table: &Table, row: usize, key_cols: &[usize]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for &c in key_cols {
        let bytes = table.column(c).get(row).key_bytes()?;
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    Some(out)
}

/// Hash join of `left` and `right` on the key pairs `on`
/// (`(left_col, right_col)`), with DI-merge semantics for shared columns.
///
/// Output schema: all left columns (keys included), followed by the right
/// columns that are neither join keys nor name-shared with a left column.
/// Shared (same-name, non-key) right columns are coalesced into the left
/// column of the same name. All output fields are nullable, since outer
/// variants introduce NULLs.
///
/// # Errors
/// Returns an error when a key column is missing or key dtypes are
/// incompatible for equality.
pub fn hash_join(left: &Table, right: &Table, on: &[(&str, &str)], how: JoinType) -> Result<Table> {
    if on.is_empty() {
        return Err(RelationalError::SchemaMismatch(
            "join requires at least one key pair".into(),
        ));
    }
    let left_keys: Vec<usize> = on
        .iter()
        .map(|(l, _)| left.schema().index_of(l))
        .collect::<Result<_>>()?;
    let right_keys: Vec<usize> = on
        .iter()
        .map(|(_, r)| right.schema().index_of(r))
        .collect::<Result<_>>()?;

    // Classify right columns: key / shared-with-left / right-only.
    let mut right_only: Vec<usize> = Vec::new();
    // Maps right column index -> left output column index for coalescing.
    let mut shared: Vec<(usize, usize)> = Vec::new();
    for (ri, rf) in right.schema().fields().iter().enumerate() {
        if right_keys.contains(&ri) {
            continue;
        }
        if let Ok(li) = left.schema().index_of(&rf.name) {
            shared.push((ri, li));
        } else {
            right_only.push(ri);
        }
    }

    // Output schema: left fields (all nullable) + right-only fields.
    let mut fields: Vec<Field> = left
        .schema()
        .fields()
        .iter()
        .map(|f| Field::new(f.name.clone(), f.dtype))
        .collect();
    for &ri in &right_only {
        let rf = &right.schema().fields()[ri];
        fields.push(Field::new(rf.name.clone(), rf.dtype));
    }
    let out_schema = Schema::new(fields)?;
    let mut out = Table::empty(format!("{}_join_{}", left.name(), right.name()), out_schema);

    // Build phase over the smaller probe-side convention: build on right.
    let mut index: HashMap<Vec<u8>, Vec<usize>> = HashMap::with_capacity(right.num_rows());
    for r in 0..right.num_rows() {
        if let Some(key) = row_key(right, r, &right_keys) {
            index.entry(key).or_default().push(r);
        }
    }

    let emit = |out: &mut Table, l: Option<usize>, r: Option<usize>| -> Result<()> {
        let mut row: Vec<Value> = Vec::with_capacity(out.num_cols());
        for (li, _f) in left.schema().fields().iter().enumerate() {
            let mut v = l.map_or(Value::Null, |lr| left.column(li).get(lr));
            // Coalesce: left key/shared columns fall back to right values.
            if v.is_null() {
                if let Some(rr) = r {
                    if let Some(pos) = left_keys.iter().position(|&k| k == li) {
                        v = right.column(right_keys[pos]).get(rr);
                    } else if let Some(&(ri, _)) = shared.iter().find(|&&(_, sli)| sli == li) {
                        v = right.column(ri).get(rr);
                    }
                }
            }
            row.push(v);
        }
        for &ri in &right_only {
            row.push(r.map_or(Value::Null, |rr| right.column(ri).get(rr)));
        }
        out.push_row(row)
    };

    let mut right_matched = vec![false; right.num_rows()];
    for l in 0..left.num_rows() {
        let matches = row_key(left, l, &left_keys).and_then(|k| index.get(&k));
        match matches {
            Some(rs) => {
                for &r in rs {
                    right_matched[r] = true;
                    emit(&mut out, Some(l), Some(r))?;
                }
            }
            None => {
                if how != JoinType::Inner {
                    emit(&mut out, Some(l), None)?;
                }
            }
        }
    }
    if how == JoinType::FullOuter {
        for (r, matched) in right_matched.iter().enumerate() {
            if !matched {
                emit(&mut out, None, Some(r))?;
            }
        }
    }
    Ok(out)
}

/// Concatenates tables with name-compatible schemas (Example 4 / HFL).
///
/// Columns are aligned by name to the first table's order; each input must
/// contain every column of the first table with an admissible type. Extra
/// columns in later tables are dropped (they are unmapped in the target
/// schema, like `dd` in the running example).
pub fn union_all(tables: &[&Table]) -> Result<Table> {
    let first = tables
        .first()
        .ok_or_else(|| RelationalError::SchemaMismatch("union of zero tables".into()))?;
    let names = first.schema().names();
    let fields: Vec<Field> = first
        .schema()
        .fields()
        .iter()
        .map(|f| Field::new(f.name.clone(), f.dtype))
        .collect();
    let mut out = Table::empty(format!("{}_union", first.name()), Schema::new(fields)?);
    for t in tables {
        let idx: Vec<usize> = names
            .iter()
            .map(|n| {
                t.schema().index_of(n).map_err(|_| {
                    RelationalError::SchemaMismatch(format!(
                        "table {} lacks column {n} required by the union schema",
                        t.name()
                    ))
                })
            })
            .collect::<Result<_>>()?;
        for r in 0..t.num_rows() {
            let row: Vec<Value> = idx.iter().map(|&c| t.column(c).get(r)).collect();
            out.push_row(row)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, TableBuilder};

    /// S1(m, n, a, hr) from Figure 2a.
    fn s1() -> Table {
        TableBuilder::new(
            "S1",
            &[
                ("m", DataType::Int64),
                ("n", DataType::Utf8),
                ("a", DataType::Float64),
                ("hr", DataType::Float64),
            ],
        )
        .unwrap()
        .row(vec![0.into(), "Jack".into(), 20.0.into(), 60.0.into()])
        .unwrap()
        .row(vec![1.into(), "Sam".into(), 35.0.into(), 58.0.into()])
        .unwrap()
        .row(vec![0.into(), "Ruby".into(), 22.0.into(), 65.0.into()])
        .unwrap()
        .row(vec![1.into(), "Jane".into(), 37.0.into(), 70.0.into()])
        .unwrap()
        .build()
    }

    /// S2(m, n, a, o, dd) from Figure 2b.
    fn s2() -> Table {
        TableBuilder::new(
            "S2",
            &[
                ("m", DataType::Int64),
                ("n", DataType::Utf8),
                ("a", DataType::Float64),
                ("o", DataType::Float64),
                ("dd", DataType::Utf8),
            ],
        )
        .unwrap()
        .row(vec![
            1.into(),
            "Rose".into(),
            45.0.into(),
            95.0.into(),
            "1/4/21".into(),
        ])
        .unwrap()
        .row(vec![
            0.into(),
            "Castiel".into(),
            20.0.into(),
            97.0.into(),
            "3/8/22".into(),
        ])
        .unwrap()
        .row(vec![
            1.into(),
            "Jane".into(),
            37.0.into(),
            92.0.into(),
            "11/5/21".into(),
        ])
        .unwrap()
        .build()
    }

    #[test]
    fn inner_join_running_example() {
        // Only Jane appears in both tables.
        let t = hash_join(&s1(), &s2(), &[("n", "n")], JoinType::Inner).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, "n").unwrap(), "Jane".into());
        assert_eq!(t.value(0, "hr").unwrap(), Value::Float(70.0));
        assert_eq!(t.value(0, "o").unwrap(), Value::Float(92.0));
        // Shared column m is coalesced, not duplicated.
        assert!(t.schema().contains("m"));
        assert_eq!(t.schema().names().iter().filter(|&&n| n == "m").count(), 1);
    }

    #[test]
    fn left_join_running_example() {
        let t = hash_join(&s1(), &s2(), &[("n", "n")], JoinType::Left).unwrap();
        assert_eq!(t.num_rows(), 4);
        // Jack has no oxygen measurement.
        assert_eq!(t.value(0, "o").unwrap(), Value::Null);
        // Jane got hers from S2.
        let jane = t.filter(|i, t| t.value(i, "n").unwrap() == "Jane".into());
        assert_eq!(jane.value(0, "o").unwrap(), Value::Float(92.0));
    }

    #[test]
    fn full_outer_join_matches_figure_2d() {
        // Fig. 2d: T has 6 rows — Jack, Sam, Ruby, Jane (merged), Rose, Castiel.
        let t = hash_join(&s1(), &s2(), &[("n", "n")], JoinType::FullOuter).unwrap();
        assert_eq!(t.num_rows(), 6);
        let proj = t.project(&["m", "a", "hr", "o"]).unwrap();
        assert_eq!(proj.num_cols(), 4);
        // Jane's row merges both sources: hr from S1, o from S2.
        let jane = t.filter(|i, t| t.value(i, "n").unwrap() == "Jane".into());
        assert_eq!(jane.num_rows(), 1);
        assert_eq!(jane.value(0, "hr").unwrap(), Value::Float(70.0));
        assert_eq!(jane.value(0, "o").unwrap(), Value::Float(92.0));
        // Rose's row (right-only) has coalesced key + left-null hr.
        let rose = t.filter(|i, t| t.value(i, "n").unwrap() == "Rose".into());
        assert_eq!(rose.value(0, "m").unwrap(), 1.into());
        assert_eq!(rose.value(0, "a").unwrap(), Value::Float(45.0));
        assert_eq!(rose.value(0, "hr").unwrap(), Value::Null);
        assert_eq!(rose.value(0, "o").unwrap(), Value::Float(95.0));
    }

    #[test]
    fn join_requires_keys_and_valid_columns() {
        assert!(hash_join(&s1(), &s2(), &[], JoinType::Inner).is_err());
        assert!(hash_join(&s1(), &s2(), &[("nope", "n")], JoinType::Inner).is_err());
        assert!(hash_join(&s1(), &s2(), &[("n", "nope")], JoinType::Inner).is_err());
    }

    #[test]
    fn null_keys_never_match() {
        let l = TableBuilder::new("l", &[("k", DataType::Utf8), ("x", DataType::Int64)])
            .unwrap()
            .row(vec![Value::Null, 1.into()])
            .unwrap()
            .build();
        let r = TableBuilder::new("r", &[("k", DataType::Utf8), ("y", DataType::Int64)])
            .unwrap()
            .row(vec![Value::Null, 2.into()])
            .unwrap()
            .build();
        let inner = hash_join(&l, &r, &[("k", "k")], JoinType::Inner).unwrap();
        assert_eq!(inner.num_rows(), 0);
        let outer = hash_join(&l, &r, &[("k", "k")], JoinType::FullOuter).unwrap();
        assert_eq!(outer.num_rows(), 2); // both survive unmatched
    }

    #[test]
    fn duplicate_keys_produce_cartesian_matches() {
        let l = TableBuilder::new("l", &[("k", DataType::Int64)])
            .unwrap()
            .row(vec![1.into()])
            .unwrap()
            .row(vec![1.into()])
            .unwrap()
            .build();
        let r = TableBuilder::new("r", &[("k", DataType::Int64), ("v", DataType::Int64)])
            .unwrap()
            .row(vec![1.into(), 10.into()])
            .unwrap()
            .row(vec![1.into(), 20.into()])
            .unwrap()
            .build();
        let t = hash_join(&l, &r, &[("k", "k")], JoinType::Inner).unwrap();
        assert_eq!(t.num_rows(), 4);
    }

    #[test]
    fn multi_key_join() {
        let t = hash_join(&s1(), &s2(), &[("n", "n"), ("a", "a")], JoinType::Inner).unwrap();
        assert_eq!(t.num_rows(), 1); // Jane matches on both name and age
    }

    #[test]
    fn int_float_keys_join_numerically() {
        let l = TableBuilder::new("l", &[("k", DataType::Int64)])
            .unwrap()
            .row(vec![1.into()])
            .unwrap()
            .build();
        let r = TableBuilder::new("r", &[("k", DataType::Float64), ("v", DataType::Int64)])
            .unwrap()
            .row(vec![1.0.into(), 5.into()])
            .unwrap()
            .build();
        let t = hash_join(&l, &r, &[("k", "k")], JoinType::Inner).unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn union_all_aligns_by_name_and_drops_extras() {
        // Example 4: S1(m,n,a,hr,o) ∪ S2(m,n,a,hr,o,dd) → T(m,a,hr,o)
        let u1 = TableBuilder::new("U1", &[("m", DataType::Int64), ("a", DataType::Float64)])
            .unwrap()
            .row(vec![0.into(), 20.0.into()])
            .unwrap()
            .build();
        let u2 = TableBuilder::new(
            "U2",
            &[
                ("a", DataType::Float64),
                ("m", DataType::Int64),
                ("dd", DataType::Utf8),
            ],
        )
        .unwrap()
        .row(vec![45.0.into(), 1.into(), "1/4/21".into()])
        .unwrap()
        .build();
        let u = union_all(&[&u1, &u2]).unwrap();
        assert_eq!(u.num_rows(), 2);
        assert_eq!(u.schema().names(), vec!["m", "a"]);
        assert_eq!(u.value(1, "m").unwrap(), 1.into());
        assert_eq!(u.value(1, "a").unwrap(), Value::Float(45.0));
    }

    #[test]
    fn union_schema_mismatch() {
        let u1 = TableBuilder::new("U1", &[("m", DataType::Int64)])
            .unwrap()
            .build();
        let u2 = TableBuilder::new("U2", &[("x", DataType::Int64)])
            .unwrap()
            .build();
        assert!(union_all(&[&u1, &u2]).is_err());
        assert!(union_all(&[]).is_err());
    }

    #[test]
    fn inner_subset_of_left_subset_of_outer() {
        let inner = hash_join(&s1(), &s2(), &[("n", "n")], JoinType::Inner).unwrap();
        let left = hash_join(&s1(), &s2(), &[("n", "n")], JoinType::Left).unwrap();
        let outer = hash_join(&s1(), &s2(), &[("n", "n")], JoinType::FullOuter).unwrap();
        assert!(inner.num_rows() <= left.num_rows());
        assert!(left.num_rows() <= outer.num_rows());
    }

    mod properties {
        use super::*;
        use proptest::prelude::{prop_assert, prop_assert_eq, proptest};
        use rand::{Rng, SeedableRng};

        /// Random table with integer keys in a small domain (forcing both
        /// matches and misses) and one payload column.
        fn random_table(name: &str, rows: usize, key_domain: i64, seed: u64) -> Table {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut b =
                TableBuilder::new(name, &[("k", DataType::Int64), ("v", DataType::Float64)])
                    .unwrap();
            for _ in 0..rows {
                b = b
                    .row(vec![
                        rng.gen_range(0..key_domain).into(),
                        rng.gen_range(-10.0..10.0).into(),
                    ])
                    .unwrap();
            }
            b.build()
        }

        proptest! {
            /// |inner| ≤ |left| ≤ |outer|, |left| ≥ |L|, and the outer
            /// join covers every key from both sides.
            #[test]
            fn prop_join_algebra(
                lrows in 0usize..20, rrows in 0usize..20,
                domain in 1i64..8, seed in 0u64..u64::MAX,
            ) {
                let l = random_table("L", lrows, domain, seed);
                let r = random_table("R", rrows, domain, seed.wrapping_add(1));
                let inner = hash_join(&l, &r, &[("k", "k")], JoinType::Inner).unwrap();
                let left = hash_join(&l, &r, &[("k", "k")], JoinType::Left).unwrap();
                let outer = hash_join(&l, &r, &[("k", "k")], JoinType::FullOuter).unwrap();
                prop_assert!(inner.num_rows() <= left.num_rows());
                prop_assert!(left.num_rows() <= outer.num_rows());
                prop_assert!(left.num_rows() >= l.num_rows());
                // Every key value of both inputs appears in the outer join.
                let outer_keys: std::collections::HashSet<i64> = (0..outer.num_rows())
                    .filter_map(|i| outer.value(i, "k").unwrap().as_i64())
                    .collect();
                for t in [&l, &r] {
                    for i in 0..t.num_rows() {
                        let k = t.value(i, "k").unwrap().as_i64().unwrap();
                        prop_assert!(outer_keys.contains(&k), "key {k} missing from outer join");
                    }
                }
                // Inner-join cardinality = Σ_k |L_k|·|R_k| (hash-join math).
                let count = |t: &Table, key: i64| {
                    (0..t.num_rows())
                        .filter(|&i| t.value(i, "k").unwrap().as_i64() == Some(key))
                        .count()
                };
                let expected_inner: usize =
                    (0..domain).map(|k| count(&l, k) * count(&r, k)).sum();
                prop_assert_eq!(inner.num_rows(), expected_inner);
            }

            /// Union row count is the sum of input row counts, and the
            /// result preserves the first table's schema.
            #[test]
            fn prop_union_counts(
                rows_a in 0usize..15, rows_b in 0usize..15, seed in 0u64..u64::MAX,
            ) {
                let a = random_table("A", rows_a, 5, seed);
                let b = random_table("B", rows_b, 5, seed.wrapping_add(9));
                let u = union_all(&[&a, &b]).unwrap();
                prop_assert_eq!(u.num_rows(), rows_a + rows_b);
                prop_assert_eq!(u.schema().names(), a.schema().names());
            }
        }
    }
}
