//! Typed relational tables, joins and CSV I/O.
//!
//! The *materialization* strategy of the paper (§IV) integrates source
//! tables with relational joins and exports the resulting target table to
//! the ML pipeline (Fig. 2). This crate is that substrate: a small,
//! self-contained columnar table engine with
//!
//! * typed, nullable columns ([`Column`], [`Value`], [`DataType`]),
//! * schemas with named fields ([`Schema`], [`Field`]),
//! * hash joins — inner, left and full outer — plus union
//!   ([`join::hash_join`], [`join::union_all`]), matching the four dataset
//!   relationships of Table I,
//! * CSV import/export with type inference ([`csv`]),
//! * conversion of numeric projections to [`amalur_matrix::DenseMatrix`]
//!   for model training ([`Table::to_matrix`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod column;
pub mod csv;
mod error;
pub mod join;
mod schema;
mod table;
mod value;

pub use column::Column;
pub use error::{RelationalError, Result};
pub use join::{hash_join, union_all, JoinType};
pub use schema::{DataType, Field, Schema};
pub use table::{Table, TableBuilder};
pub use value::Value;
