//! Schemas and data types.

use crate::{RelationalError, Result, Value};
use std::fmt;

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integers.
    Int64,
    /// 64-bit floats.
    Float64,
    /// UTF-8 strings.
    Utf8,
    /// Booleans.
    Bool,
}

impl DataType {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Utf8 => "Utf8",
            DataType::Bool => "Bool",
        }
    }

    /// `true` for types that convert losslessly to `f64` features.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64 | DataType::Bool)
    }

    /// Whether `value` is admissible in a column of this type
    /// (NULL is always admissible; Int is admissible in Float64 columns).
    pub fn accepts(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (DataType::Int64, Value::Int(_))
                | (DataType::Float64, Value::Float(_) | Value::Int(_))
                | (DataType::Utf8, Value::Str(_))
                | (DataType::Bool, Value::Bool(_))
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within its schema.
    pub name: String,
    /// Column data type.
    pub dtype: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl Field {
    /// Creates a nullable field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// Creates a non-nullable field.
    pub fn not_null(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }
}

/// An ordered collection of uniquely-named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema, checking for duplicate names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(RelationalError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Self { fields })
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| RelationalError::UnknownColumn(name.to_owned()))
    }

    /// Field descriptor by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// `true` if a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    /// Column names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Builds the projected sub-schema over `names` (in the given order).
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let fields = names
            .iter()
            .map(|n| self.field(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
            if !field.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("score", DataType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Utf8),
        ])
        .unwrap_err();
        assert!(matches!(err, RelationalError::DuplicateColumn(_)));
    }

    #[test]
    fn index_and_lookup() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("score").unwrap(), 2);
        assert!(s.index_of("missing").is_err());
        assert_eq!(s.field("name").unwrap().dtype, DataType::Utf8);
        assert!(s.contains("id"));
        assert!(!s.contains("nope"));
        assert_eq!(s.names(), vec!["id", "name", "score"]);
    }

    #[test]
    fn projection_preserves_order() {
        let s = schema();
        let p = s.project(&["score", "id"]).unwrap();
        assert_eq!(p.names(), vec!["score", "id"]);
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn datatype_accepts() {
        assert!(DataType::Float64.accepts(&Value::Int(1)));
        assert!(DataType::Float64.accepts(&Value::Float(1.0)));
        assert!(!DataType::Int64.accepts(&Value::Float(1.0)));
        assert!(DataType::Int64.accepts(&Value::Null));
        assert!(DataType::Utf8.accepts(&Value::Str("x".into())));
        assert!(!DataType::Utf8.accepts(&Value::Bool(true)));
        assert!(DataType::Bool.accepts(&Value::Bool(true)));
    }

    #[test]
    fn numeric_types() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(DataType::Bool.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
    }

    #[test]
    fn display_format() {
        let s = schema();
        let shown = s.to_string();
        assert!(shown.contains("id: Int64 NOT NULL"));
        assert!(shown.contains("name: Utf8"));
    }
}
