//! Tables: named collections of typed columns.

use crate::{Column, DataType, Field, RelationalError, Result, Schema, Value};
use amalur_matrix::DenseMatrix;
use std::fmt;

/// A named, columnar relational table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Creates an empty table for `schema`.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype))
            .collect();
        Self {
            name: name.into(),
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the table (builder-style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.schema.arity()
    }

    /// Column by position.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Appends a row of dynamic values.
    ///
    /// # Errors
    /// * [`RelationalError::ArityMismatch`] if the row length differs from
    ///   the schema arity.
    /// * [`RelationalError::TypeMismatch`] for inadmissible values.
    /// * [`RelationalError::UnexpectedNull`] for NULLs in non-nullable
    ///   columns.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                expected: self.schema.arity(),
                found: row.len(),
            });
        }
        for (field, value) in self.schema.fields().iter().zip(&row) {
            if value.is_null() && !field.nullable {
                return Err(RelationalError::UnexpectedNull {
                    column: field.name.clone(),
                    row: self.num_rows,
                });
            }
            if !field.dtype.accepts(value) {
                return Err(RelationalError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype.name(),
                    found: format!("{value:?}"),
                });
            }
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value)?;
        }
        self.num_rows += 1;
        Ok(())
    }

    /// Reads row `i` as a vector of dynamic values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Reads the cell at (`row`, column `name`).
    pub fn value(&self, row: usize, name: &str) -> Result<Value> {
        Ok(self.column_by_name(name)?.get(row))
    }

    /// Projects onto the named columns (in the given order).
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let schema = self.schema.project(names)?;
        let columns = names
            .iter()
            .map(|n| self.schema.index_of(n).map(|i| self.columns[i].clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Table {
            name: self.name.clone(),
            schema,
            columns,
            num_rows: self.num_rows,
        })
    }

    /// Keeps only the rows for which `pred` returns true.
    pub fn filter(&self, pred: impl Fn(usize, &Table) -> bool) -> Table {
        let keep: Vec<usize> = (0..self.num_rows).filter(|&i| pred(i, self)).collect();
        self.gather_rows(&keep)
    }

    /// Builds a new table from the given row indices (in order, duplicates
    /// allowed).
    pub fn gather_rows(&self, rows: &[usize]) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(rows)).collect(),
            num_rows: rows.len(),
        }
    }

    /// Converts the named numeric columns into a dense matrix
    /// (`num_rows × names.len()`), encoding NULLs as `null_value`.
    ///
    /// This is the `Sₖ → Dₖ` step of §III-B: "we transform the original
    /// tables to their matrix forms which only include the mapped columns".
    pub fn to_matrix(&self, names: &[&str], null_value: f64) -> Result<DenseMatrix> {
        let mut data = Vec::with_capacity(self.num_rows * names.len());
        let cols = names
            .iter()
            .map(|n| {
                let idx = self.schema.index_of(n)?;
                if !self.schema.fields()[idx].dtype.is_numeric() {
                    return Err(RelationalError::NonNumericColumn((*n).to_owned()));
                }
                Ok(&self.columns[idx])
            })
            .collect::<Result<Vec<_>>>()?;
        for i in 0..self.num_rows {
            for col in &cols {
                let v = col.get_f64(i)?;
                data.push(v.unwrap_or(null_value));
            }
        }
        DenseMatrix::from_vec(self.num_rows, names.len(), data)
            .map_err(|e| RelationalError::Parse(e.to_string()))
    }

    /// All numeric column names, in schema order.
    pub fn numeric_column_names(&self) -> Vec<&str> {
        self.schema
            .fields()
            .iter()
            .filter(|f| f.dtype.is_numeric())
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Overall NULL ratio across all cells (0.0 for empty tables).
    pub fn null_ratio(&self) -> f64 {
        let cells = self.num_rows * self.num_cols();
        if cells == 0 {
            return 0.0;
        }
        let nulls: usize = self.columns.iter().map(Column::null_count).sum();
        nulls as f64 / cells as f64
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}{}", self.name, self.schema)?;
        let show = self.num_rows.min(20);
        for i in 0..show {
            let row: Vec<String> = self.row(i).iter().map(ToString::to_string).collect();
            writeln!(f, "  {}", row.join(" | "))?;
        }
        if self.num_rows > show {
            writeln!(f, "  … {} more rows", self.num_rows - show)?;
        }
        Ok(())
    }
}

/// Convenience builder for assembling tables in tests and examples.
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Starts a builder with `(name, dtype)` column declarations
    /// (all nullable).
    pub fn new(name: impl Into<String>, cols: &[(&str, DataType)]) -> Result<Self> {
        let schema = Schema::new(
            cols.iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )?;
        Ok(Self {
            table: Table::empty(name, schema),
        })
    }

    /// Appends a row.
    pub fn row(mut self, values: Vec<Value>) -> Result<Self> {
        self.table.push_row(values)?;
        Ok(self)
    }

    /// Finishes and returns the table.
    pub fn build(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patients() -> Table {
        TableBuilder::new(
            "patients",
            &[
                ("id", DataType::Int64),
                ("name", DataType::Utf8),
                ("age", DataType::Float64),
            ],
        )
        .unwrap()
        .row(vec![1.into(), "Jack".into(), 20.0.into()])
        .unwrap()
        .row(vec![2.into(), "Sam".into(), 35.0.into()])
        .unwrap()
        .row(vec![3.into(), Value::Null, Value::Null])
        .unwrap()
        .build()
    }

    #[test]
    fn push_and_read_rows() {
        let t = patients();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 3);
        assert_eq!(t.row(0), vec![1.into(), "Jack".into(), Value::Float(20.0)]);
        assert_eq!(t.value(1, "name").unwrap(), "Sam".into());
    }

    #[test]
    fn arity_validation() {
        let mut t = patients();
        let err = t.push_row(vec![4.into()]).unwrap_err();
        assert!(matches!(err, RelationalError::ArityMismatch { .. }));
    }

    #[test]
    fn type_validation() {
        let mut t = patients();
        let err = t
            .push_row(vec!["oops".into(), "x".into(), 1.0.into()])
            .unwrap_err();
        assert!(matches!(err, RelationalError::TypeMismatch { .. }));
        // A failed push must not partially mutate the table.
        assert_eq!(t.num_rows(), 3);
        for c in 0..t.num_cols() {
            assert_eq!(t.column(c).len(), 3);
        }
    }

    #[test]
    fn not_null_enforced() {
        let schema = Schema::new(vec![Field::not_null("id", DataType::Int64)]).unwrap();
        let mut t = Table::empty("t", schema);
        let err = t.push_row(vec![Value::Null]).unwrap_err();
        assert!(matches!(err, RelationalError::UnexpectedNull { .. }));
    }

    #[test]
    fn int_into_float_column() {
        let mut t = Table::empty(
            "t",
            Schema::new(vec![Field::new("x", DataType::Float64)]).unwrap(),
        );
        t.push_row(vec![Value::Int(2)]).unwrap();
        assert_eq!(t.value(0, "x").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn projection() {
        let t = patients();
        let p = t.project(&["age", "id"]).unwrap();
        assert_eq!(p.schema().names(), vec!["age", "id"]);
        assert_eq!(p.row(0), vec![Value::Float(20.0), 1.into()]);
        assert!(t.project(&["missing"]).is_err());
    }

    #[test]
    fn filter_rows() {
        let t = patients();
        let adults = t.filter(|i, t| matches!(t.value(i, "age"), Ok(Value::Float(a)) if a >= 30.0));
        assert_eq!(adults.num_rows(), 1);
        assert_eq!(adults.value(0, "name").unwrap(), "Sam".into());
    }

    #[test]
    fn gather_rows_duplicates() {
        let t = patients();
        let g = t.gather_rows(&[0, 0, 2]);
        assert_eq!(g.num_rows(), 3);
        assert_eq!(g.value(1, "id").unwrap(), 1.into());
        assert_eq!(g.value(2, "id").unwrap(), 3.into());
    }

    #[test]
    fn to_matrix_with_null_encoding() {
        let t = patients();
        let m = t.to_matrix(&["id", "age"], 0.0).unwrap();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(0, 1), 20.0);
        assert_eq!(m.get(2, 1), 0.0); // NULL encoded
        assert!(t.to_matrix(&["name"], 0.0).is_err());
    }

    #[test]
    fn numeric_column_names() {
        let t = patients();
        assert_eq!(t.numeric_column_names(), vec!["id", "age"]);
    }

    #[test]
    fn null_ratio() {
        let t = patients();
        assert!((t.null_ratio() - 2.0 / 9.0).abs() < 1e-12);
        let empty = Table::empty("e", Schema::new(vec![]).unwrap());
        assert_eq!(empty.null_ratio(), 0.0);
    }

    #[test]
    fn display_does_not_panic() {
        let shown = patients().to_string();
        assert!(shown.contains("patients"));
        assert!(shown.contains("Jack"));
    }
}
