//! Scalar values.

use std::cmp::Ordering;
use std::fmt;

/// A single scalar cell value.
///
/// `Value` is the dynamic-typing boundary of the engine: rows are read and
/// written as `Vec<Value>`, while storage stays typed per column.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// `true` when the value is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Converts numeric-ish values to `f64` (the encoding used when a
    /// table column becomes an ML feature). Booleans become 0.0/1.0;
    /// strings and NULLs return `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Null | Value::Str(_) => None,
        }
    }

    /// Returns the string payload for `Str` values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload for `Int` values.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A total ordering suitable for sorting and equality joins:
    /// `Null < Bool < Int/Float (numeric order) < Str`. Ints and floats
    /// compare numerically so `Int(1) == Float(1.0)` for join purposes.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(_) | Float(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_) | Float(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
        }
    }

    /// Join-key equality: NULL never equals anything (SQL semantics),
    /// ints and floats compare numerically.
    pub fn key_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.total_cmp(other) == Ordering::Equal
    }

    /// A hashable normalization of the value for use as a hash-join key.
    /// Returns `None` for NULL (which must not match anything).
    pub fn key_bytes(&self) -> Option<Vec<u8>> {
        match self {
            Value::Null => None,
            Value::Int(i) => {
                // Normalize to float bits so Int(1) and Float(1.0) collide.
                let mut v = vec![b'n'];
                v.extend_from_slice(&(*i as f64).to_bits().to_le_bytes());
                Some(v)
            }
            Value::Float(f) => {
                let mut v = vec![b'n'];
                // Normalize -0.0 to 0.0 so they hash identically.
                let f = if *f == 0.0 { 0.0 } else { *f };
                v.extend_from_slice(&f.to_bits().to_le_bytes());
                Some(v)
            }
            Value::Str(s) => {
                let mut v = vec![b's'];
                v.extend_from_slice(s.as_bytes());
                Some(v)
            }
            Value::Bool(b) => Some(vec![b'b', u8::from(*b)]),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_checks() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn as_f64_conversions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Bool(false).as_f64(), Some(0.0));
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn ordering_across_types() {
        let mut vals = [
            Value::Str("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(2));
        assert_eq!(vals[4], Value::Str("b".into()));
    }

    #[test]
    fn int_float_numeric_equality() {
        assert!(Value::Int(1).key_eq(&Value::Float(1.0)));
        assert_eq!(Value::Int(1).key_bytes(), Value::Float(1.0).key_bytes());
    }

    #[test]
    fn null_never_joins() {
        assert!(!Value::Null.key_eq(&Value::Null));
        assert!(Value::Null.key_bytes().is_none());
    }

    #[test]
    fn negative_zero_normalized() {
        assert_eq!(
            Value::Float(0.0).key_bytes(),
            Value::Float(-0.0).key_bytes()
        );
    }

    #[test]
    fn key_bytes_distinguish_types() {
        // "1" as a string must not join with 1 as a number.
        assert_ne!(
            Value::Str("1".into()).key_bytes(),
            Value::Int(1).key_bytes()
        );
        assert_ne!(Value::Bool(true).key_bytes(), Value::Int(1).key_bytes());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from(1.0f64), Value::Float(1.0));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(2i64)), Value::Int(2));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }
}
