//! Typed serving errors — admission control speaks through these.

use amalur_catalog::CatalogError;
use amalur_factorize::FactorizeError;
use amalur_ml::MlError;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Everything that can go wrong between submitting a request and
/// receiving its response.
#[derive(Debug)]
pub enum ServeError {
    /// The bounded admission queue is full — the caller should back off
    /// and retry. Carries the queue capacity so clients can reason
    /// about load.
    Overloaded {
        /// Capacity of the admission queue that rejected the request.
        capacity: usize,
    },
    /// The server is draining for shutdown and no longer admits work.
    ShuttingDown,
    /// Dataset resolution failed (unknown name, unknown version, or
    /// retired dataset).
    Dataset(CatalogError),
    /// The request's matrix shapes don't fit the resolved dataset.
    BadRequest(String),
    /// A factorized kernel failed while executing the request.
    Factorize(FactorizeError),
    /// Model training failed.
    Ml(MlError),
    /// The worker executing the request disappeared before responding
    /// (a bug or a poisoned panic — never part of normal operation).
    WorkerLost,
    /// The OS refused to spawn a server thread at startup.
    Spawn(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
            ServeError::Dataset(e) => write!(f, "dataset resolution failed: {e}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Factorize(e) => write!(f, "kernel failure: {e}"),
            ServeError::Ml(e) => write!(f, "training failure: {e}"),
            ServeError::WorkerLost => f.write_str("worker dropped the request without responding"),
            ServeError::Spawn(e) => write!(f, "failed to spawn server thread: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Dataset(e) => Some(e),
            ServeError::Factorize(e) => Some(e),
            ServeError::Ml(e) => Some(e),
            ServeError::Spawn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for ServeError {
    fn from(e: CatalogError) -> Self {
        ServeError::Dataset(e)
    }
}

impl From<FactorizeError> for ServeError {
    fn from(e: FactorizeError) -> Self {
        ServeError::Factorize(e)
    }
}

impl From<MlError> for ServeError {
    fn from(e: MlError) -> Self {
        ServeError::Ml(e)
    }
}
