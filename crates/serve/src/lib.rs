//! `amalur-serve`: a concurrent serving layer over factorized datasets.
//!
//! The paper's pipeline ends where most deployments begin: once a
//! factorized table is integrated and a plan chosen, something has to
//! *host* it — answer prediction requests, retrain on demand, and stay
//! fast while many clients hammer it at once. This crate is that host.
//!
//! # Architecture
//!
//! A [`Server`] owns no data; datasets live in an
//! [`amalur_catalog::DatasetRegistry`]`<FactorizedTable>` and are
//! resolved to `Arc<FactorizedTable>` at admission, so publishing a new
//! version never disturbs requests already in flight. Three stages sit
//! between a client and a kernel:
//!
//! 1. **Admission** ([`ServerHandle`]): resolution + shape validation,
//!    then a `try_send` into a *bounded* queue. A full queue rejects
//!    with [`ServeError::Overloaded`] immediately — load shedding is a
//!    typed error, not a growing buffer.
//! 2. **Batching dispatcher**: holds an admitted predict open for
//!    [`ServerConfig::batch_window`], coalescing same-(dataset, version)
//!    predicts into one GEMM of at most
//!    [`ServerConfig::max_batch_cols`] columns. Batching is possible
//!    *only because* the factorized kernels expose a column-stable
//!    variant (`FactorizedTable::lmm_colstable_into`): column `j` of a
//!    batched multiply is bit-identical to serving that column alone,
//!    so coalescing is purely a throughput decision — it can never
//!    change a client's answer.
//! 3. **Workers**: a fixed pool, each thread leasing its own shard of a
//!    [`amalur_matrix::WorkspaceArena`]. After warm-up, steady-state
//!    serving performs **zero fresh workspace allocations** (observable
//!    via [`ServerHandle::fresh_workspace_allocations`]). Each worker
//!    caps its kernel parallelism with
//!    [`amalur_matrix::set_thread_budget`] so `workers × kernel threads`
//!    never exceeds the machine.
//!
//! [`Server::shutdown`] drains: admission stops (typed
//! [`ServeError::ShuttingDown`]), every already-admitted request still
//! completes, and outstanding [`Ticket`]s all resolve.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod metrics;
mod request;
mod server;

pub use error::{Result, ServeError};
pub use request::{PredictRequest, PredictResponse, Ticket, TrainRequest, TrainResponse};
pub use server::{Server, ServerConfig, ServerHandle, StatsSnapshot};

pub use amalur_obs::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
