//! Serving-layer observability: the per-server [`MetricsRegistry`] and
//! the pre-registered handles the hot paths record through.
//!
//! Handles are resolved once at server start; recording through them is
//! a relaxed atomic add and allocates nothing, which keeps instrumented
//! workers inside the steady-state zero-allocation contract
//! (`tests/zero_alloc.rs` pins this with recording active). The only
//! lazily registered names are the per-dataset request counters, and
//! those are resolved on the *client* thread at admission — never on a
//! worker.
//!
//! Timing uses [`WallClock`] because serving latencies are real
//! durations; the seeded federated paths use
//! [`amalur_obs::VirtualClock`] instead (see the `amalur-obs` crate
//! docs for the rule).

use amalur_obs::{Clock, Counter, Histogram, MetricHandle, MetricsRegistry, WallClock};
use std::sync::Arc;

/// The registry plus the handles the serving hot paths record through.
#[derive(Clone)]
pub(crate) struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    clock: WallClock,
    /// Admission-to-completion latency of each predict request (µs).
    pub predict_latency_us: MetricHandle<Histogram>,
    /// Admission-to-execution-start wait of each predict request (µs).
    pub queue_wait_us: MetricHandle<Histogram>,
    /// Admission-to-completion latency of each train request (µs).
    pub train_latency_us: MetricHandle<Histogram>,
    /// Admission-to-execution-start wait of each train request (µs).
    pub train_queue_wait_us: MetricHandle<Histogram>,
    /// Total feature columns per dispatched predict batch.
    pub batch_width_cols: MetricHandle<Histogram>,
    /// Requests coalesced into each dispatched predict batch.
    pub batch_jobs: MetricHandle<Histogram>,
    /// Batch width as a percentage of `max_batch_cols` — how full the
    /// batching window was when it closed.
    pub window_occupancy_pct: MetricHandle<Histogram>,
    /// Predict requests admitted.
    pub predict_requests: MetricHandle<Counter>,
    /// Train requests admitted.
    pub train_requests: MetricHandle<Counter>,
    /// Requests rejected at admission (queue full).
    pub rejected_requests: MetricHandle<Counter>,
    /// Total µs workers spent executing jobs — divide by wall time ×
    /// worker count for pool utilization.
    pub worker_busy_us: MetricHandle<Counter>,
    /// Per-job execution span on a worker (µs), recorded via
    /// [`amalur_obs::SpanGuard`].
    pub worker_exec_us: MetricHandle<Histogram>,
}

impl ServerMetrics {
    /// Builds the registry, mounts the kernel-layer statics, and
    /// resolves every fixed-name handle.
    pub fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        amalur_matrix::mount_metrics(&registry);
        amalur_factorize::mount_metrics(&registry);
        Self {
            clock: WallClock::new(),
            predict_latency_us: registry.histogram("serve.predict.latency_us"),
            queue_wait_us: registry.histogram("serve.predict.queue_wait_us"),
            train_latency_us: registry.histogram("serve.train.latency_us"),
            train_queue_wait_us: registry.histogram("serve.train.queue_wait_us"),
            batch_width_cols: registry.histogram("serve.batch.width_cols"),
            batch_jobs: registry.histogram("serve.batch.jobs"),
            window_occupancy_pct: registry.histogram("serve.batch.window_occupancy_pct"),
            predict_requests: registry.counter("serve.requests.predict"),
            train_requests: registry.counter("serve.requests.train"),
            rejected_requests: registry.counter("serve.requests.rejected"),
            worker_busy_us: registry.counter("serve.worker.busy_us"),
            worker_exec_us: registry.histogram("serve.worker.exec_us"),
            registry,
        }
    }

    /// The shared wall clock all serving timestamps come from.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// The clock itself, for span guards.
    pub fn clock(&self) -> &WallClock {
        &self.clock
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Get-or-register the per-dataset predict counter
    /// `serve.dataset.<name>.predicts`. Called at admission (client
    /// thread), where the name allocation is acceptable.
    pub fn dataset_predicts(&self, dataset: &str) -> MetricHandle<Counter> {
        self.registry
            .counter(&format!("serve.dataset.{dataset}.predicts"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_names_are_registered_up_front() {
        let m = ServerMetrics::new();
        let snap = m.registry().snapshot();
        for name in [
            "serve.predict.latency_us",
            "serve.predict.queue_wait_us",
            "serve.train.latency_us",
            "serve.batch.width_cols",
            "serve.batch.jobs",
            "serve.batch.window_occupancy_pct",
        ] {
            assert!(snap.histogram(name).is_some(), "{name} missing");
        }
        for name in [
            "serve.requests.predict",
            "serve.requests.train",
            "serve.requests.rejected",
            "serve.worker.busy_us",
            "matrix.gemm.packed_dispatches",
            "factorize.lmm_colstable.calls",
        ] {
            assert!(snap.counter(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn dataset_counter_is_get_or_register() {
        let m = ServerMetrics::new();
        m.dataset_predicts("flights").inc();
        m.dataset_predicts("flights").inc();
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter("serve.dataset.flights.predicts"), Some(2));
    }
}
