//! Public request/response types and the ticket clients wait on.

use crate::error::{Result, ServeError};
use amalur_matrix::DenseMatrix;
use amalur_ml::LinRegConfig;
use crossbeam::channel::Receiver;

/// A prediction request: `T · X` against a catalog-registered
/// factorized dataset, where each column of `features` is one scoring
/// vector (`c_T × k`, usually `k = 1`).
#[derive(Debug, Clone)]
pub struct PredictRequest {
    /// Catalog name of the dataset.
    pub dataset: String,
    /// Pin to a specific published version; `None` = latest active.
    pub version: Option<u64>,
    /// Scoring matrix, `c_T × k`.
    pub features: DenseMatrix,
}

/// The answer to a [`PredictRequest`].
#[derive(Debug, Clone)]
pub struct PredictResponse {
    /// Dataset the prediction ran against.
    pub dataset: String,
    /// Version actually used (resolved at admission).
    pub version: u64,
    /// `T · features`, `r_T × k`. Bit-identical to serving each column
    /// alone, regardless of how requests were coalesced (the
    /// column-stable GEMM contract — see the crate docs).
    pub predictions: DenseMatrix,
    /// How many requests shared the GEMM that produced this response
    /// (1 = executed alone). Observability only; never affects values.
    pub batched_with: usize,
}

/// A training request: fit linear regression on a factorized dataset.
#[derive(Debug, Clone)]
pub struct TrainRequest {
    /// Catalog name of the dataset.
    pub dataset: String,
    /// Pin to a specific published version; `None` = latest active.
    pub version: Option<u64>,
    /// Label column, `r_T × 1`.
    pub labels: DenseMatrix,
    /// Gradient-descent hyper-parameters.
    pub config: LinRegConfig,
}

/// The answer to a [`TrainRequest`].
#[derive(Debug, Clone)]
pub struct TrainResponse {
    /// Dataset the model was trained on.
    pub dataset: String,
    /// Version actually used (resolved at admission).
    pub version: u64,
    /// Fitted coefficient vector, `c_T × 1`.
    pub coefficients: DenseMatrix,
    /// Number of gradient-descent epochs actually run.
    pub epochs_run: usize,
}

/// A claim on an in-flight request's eventual response.
///
/// Returned by the non-blocking `submit_*` methods so clients can fan
/// out several requests (which is what gives the dispatcher something
/// to batch) before waiting on any of them.
pub struct Ticket<T> {
    pub(crate) rx: Receiver<Result<T>>,
}

impl<T> Ticket<T> {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    /// Whatever the worker reported, or [`ServeError::WorkerLost`] if
    /// the executing worker vanished.
    pub fn wait(self) -> Result<T> {
        self.rx.recv().map_err(|_| ServeError::WorkerLost)?
    }
}
