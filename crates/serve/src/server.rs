//! The serving engine: admission, batching dispatcher, worker pool.
//!
//! ```text
//!  clients ──try_send──▶ bounded admission queue (Overloaded when full)
//!                              │
//!                        dispatcher thread
//!                 (coalesces same-(dataset, version)
//!                  predicts inside `batch_window`)
//!                              │
//!                  bounded work queue (1 slot/worker,
//!                  backpressure onto the admission queue)
//!                              │
//!              N workers, each leasing its own arena shard,
//!              kernel threads capped so N·threads ≤ cores
//! ```

use crate::error::{Result, ServeError};
use crate::metrics::ServerMetrics;
use crate::request::{PredictRequest, PredictResponse, Ticket, TrainRequest, TrainResponse};
use amalur_catalog::DatasetRegistry;
use amalur_factorize::FactorizedTable;
use amalur_matrix::{set_thread_budget, DenseMatrix, Workspace, WorkspaceArena};
use amalur_ml::{LinearRegression, MlError};
use amalur_obs::{span, MetricsRegistry, MetricsSnapshot};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing kernels (clamped to ≥ 1).
    pub workers: usize,
    /// Admission-queue capacity; a full queue rejects with
    /// [`ServeError::Overloaded`] instead of queueing unboundedly.
    pub queue_capacity: usize,
    /// How long the dispatcher holds an admitted predict open for
    /// same-dataset companions before dispatching the batch.
    pub batch_window: Duration,
    /// Maximum GEMM width (total feature columns) per batch; `1`
    /// disables coalescing entirely.
    pub max_batch_cols: usize,
    /// Total kernel-thread budget split evenly across workers so
    /// `workers × per-worker threads` never exceeds it; `None` uses the
    /// machine's available parallelism.
    pub total_threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 1024,
            batch_window: Duration::from_micros(200),
            max_batch_cols: 32,
            total_threads: None,
        }
    }
}

/// Monotonic counters exposed by [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests admitted past the bounded queue.
    pub accepted: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// GEMM dispatches on the predict path (batched or solo).
    pub predict_batches: u64,
    /// Predict requests that shared a GEMM with at least one other.
    pub coalesced_predicts: u64,
    /// Predict requests completed.
    pub predicts_done: u64,
    /// Train requests completed.
    pub trains_done: u64,
}

#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    rejected: AtomicU64,
    predict_batches: AtomicU64,
    coalesced_predicts: AtomicU64,
    predicts_done: AtomicU64,
    trains_done: AtomicU64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            predict_batches: self.predict_batches.load(Ordering::Relaxed),
            coalesced_predicts: self.coalesced_predicts.load(Ordering::Relaxed),
            predicts_done: self.predicts_done.load(Ordering::Relaxed),
            trains_done: self.trains_done.load(Ordering::Relaxed),
        }
    }
}

struct PredictJob {
    dataset: String,
    version: u64,
    table: Arc<FactorizedTable>,
    features: DenseMatrix,
    reply: Sender<Result<PredictResponse>>,
    /// Admission timestamp on the server's shared wall clock (µs) —
    /// queue-wait and end-to-end latency both measure from here.
    admitted_us: u64,
}

struct TrainJob {
    dataset: String,
    version: u64,
    table: Arc<FactorizedTable>,
    labels: DenseMatrix,
    config: amalur_ml::LinRegConfig,
    reply: Sender<Result<TrainResponse>>,
    admitted_us: u64,
}

enum Job {
    Predict(PredictJob),
    Train(TrainJob),
    /// Enqueued exactly once by [`Server::shutdown`]; FIFO order
    /// guarantees every previously admitted job is dispatched first.
    Shutdown,
}

enum Work {
    /// One GEMM's worth of predict jobs for the same (dataset, version).
    PredictBatch(Vec<PredictJob>),
    Train(TrainJob),
    Shutdown,
}

struct Inner {
    registry: Arc<DatasetRegistry<FactorizedTable>>,
    queue_tx: Sender<Job>,
    queue_capacity: usize,
    accepting: AtomicBool,
    arena: Arc<WorkspaceArena>,
    stats: Arc<Stats>,
    metrics: ServerMetrics,
}

/// Cloneable client-side handle: admission control plus observability.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Submits a prediction without blocking on its execution.
    ///
    /// Resolution and shape validation happen here, synchronously, so
    /// malformed requests never consume queue slots.
    ///
    /// # Errors
    /// [`ServeError::ShuttingDown`], [`ServeError::Dataset`],
    /// [`ServeError::BadRequest`], or [`ServeError::Overloaded`].
    pub fn submit_predict(&self, req: PredictRequest) -> Result<Ticket<PredictResponse>> {
        let (version, table) = self.resolve(&req.dataset, req.version)?;
        let (_, c_t) = table.target_shape();
        if req.features.rows() != c_t || req.features.cols() == 0 {
            return Err(ServeError::BadRequest(format!(
                "features must be {c_t} × k (k ≥ 1) for dataset '{}', got {:?}",
                req.dataset,
                req.features.shape()
            )));
        }
        let (reply, rx) = channel::bounded(1);
        let dataset_counter = self.inner.metrics.dataset_predicts(&req.dataset);
        self.admit(Job::Predict(PredictJob {
            dataset: req.dataset,
            version,
            table,
            features: req.features,
            reply,
            admitted_us: self.inner.metrics.now_us(),
        }))?;
        self.inner.metrics.predict_requests.inc();
        dataset_counter.inc();
        Ok(Ticket { rx })
    }

    /// Submits a prediction and blocks until its response arrives.
    ///
    /// # Errors
    /// As [`Self::submit_predict`], plus whatever the worker reports.
    pub fn predict(&self, req: PredictRequest) -> Result<PredictResponse> {
        self.submit_predict(req)?.wait()
    }

    /// Submits a training request without blocking on its execution.
    ///
    /// # Errors
    /// As [`Self::submit_predict`].
    pub fn submit_train(&self, req: TrainRequest) -> Result<Ticket<TrainResponse>> {
        let (version, table) = self.resolve(&req.dataset, req.version)?;
        let (r_t, _) = table.target_shape();
        if req.labels.shape() != (r_t, 1) {
            return Err(ServeError::BadRequest(format!(
                "labels must be {r_t} × 1 for dataset '{}', got {:?}",
                req.dataset,
                req.labels.shape()
            )));
        }
        let (reply, rx) = channel::bounded(1);
        self.admit(Job::Train(TrainJob {
            dataset: req.dataset,
            version,
            table,
            labels: req.labels,
            config: req.config,
            reply,
            admitted_us: self.inner.metrics.now_us(),
        }))?;
        self.inner.metrics.train_requests.inc();
        Ok(Ticket { rx })
    }

    /// Submits a training request and blocks until the model is fitted.
    ///
    /// # Errors
    /// As [`Self::submit_train`], plus whatever the worker reports.
    pub fn train(&self, req: TrainRequest) -> Result<TrainResponse> {
        self.submit_train(req)?.wait()
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// A point-in-time snapshot of the server's metrics registry:
    /// predict/train latency, queue-wait, batch-width and
    /// window-occupancy histograms, request counters (global and
    /// per-dataset), worker busy time, plus the mounted kernel-layer
    /// dispatch counters and workspace high-water gauge.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.registry().snapshot()
    }

    /// The server's metrics registry, for mounting additional metrics
    /// or embedding the `amalur-obs/v1` dump
    /// ([`MetricsSnapshot::to_json`]) into bench reports.
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        self.inner.metrics.registry()
    }

    /// Arena-wide workspace pool misses — constant across requests once
    /// every worker's shard is warm (the steady-state zero-allocation
    /// contract the serving tests pin down).
    pub fn fresh_workspace_allocations(&self) -> usize {
        self.inner.arena.fresh_allocations()
    }

    /// The registry this server resolves datasets against.
    pub fn registry(&self) -> &Arc<DatasetRegistry<FactorizedTable>> {
        &self.inner.registry
    }

    fn resolve(&self, dataset: &str, version: Option<u64>) -> Result<(u64, Arc<FactorizedTable>)> {
        let v = match version {
            Some(v) => self.inner.registry.fetch_version(dataset, v)?,
            None => self.inner.registry.fetch(dataset)?,
        };
        Ok((v.version, v.data))
    }

    fn admit(&self, job: Job) -> Result<()> {
        if !self.inner.accepting.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        match self.inner.queue_tx.try_send(job) {
            Ok(()) => {
                self.inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                self.inner.metrics.rejected_requests.inc();
                Err(ServeError::Overloaded {
                    capacity: self.inner.queue_capacity,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }
}

/// A running serving engine (dispatcher + worker pool). Dropping it
/// without [`Server::shutdown`] detaches the threads; prefer an
/// explicit shutdown so in-flight requests drain.
pub struct Server {
    handle: ServerHandle,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Boots the dispatcher and worker threads against `registry`.
    ///
    /// # Errors
    /// [`ServeError::Spawn`] when the OS refuses to start a thread; any
    /// workers spawned before the failure observe their channel close
    /// and exit.
    pub fn start(
        registry: Arc<DatasetRegistry<FactorizedTable>>,
        config: ServerConfig,
    ) -> Result<Server> {
        let workers = config.workers.max(1);
        let queue_capacity = config.queue_capacity.max(1);
        let max_batch_cols = config.max_batch_cols.max(1);
        let total_threads = config
            .total_threads
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()));
        let per_worker_threads = (total_threads / workers).max(1);

        let (queue_tx, queue_rx) = channel::bounded::<Job>(queue_capacity);
        // One slot per worker: when every worker is busy the dispatcher
        // blocks here, admission backs up into the bounded queue, and
        // overload becomes visible to clients instead of hiding in an
        // unbounded buffer.
        let (work_tx, work_rx) = channel::bounded::<Work>(workers);

        let arena = Arc::new(WorkspaceArena::new(workers));
        let stats = Arc::new(Stats::default());
        let metrics = ServerMetrics::new();

        let mut worker_handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let rx = work_rx.clone();
            let arena = Arc::clone(&arena);
            let stats = Arc::clone(&stats);
            let metrics = metrics.clone();
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("amalur-serve-worker-{idx}"))
                    .spawn(move || {
                        run_worker(idx, per_worker_threads, &rx, &arena, &stats, &metrics)
                    })
                    .map_err(ServeError::Spawn)?,
            );
        }
        drop(work_rx);

        let dispatcher = {
            let stats = Arc::clone(&stats);
            let metrics = metrics.clone();
            let window = config.batch_window;
            thread::Builder::new()
                .name("amalur-serve-dispatcher".into())
                .spawn(move || {
                    run_dispatcher(
                        &queue_rx,
                        &work_tx,
                        window,
                        max_batch_cols,
                        workers,
                        &stats,
                        &metrics,
                    )
                })
                .map_err(ServeError::Spawn)?
        };

        Ok(Server {
            handle: ServerHandle {
                inner: Arc::new(Inner {
                    registry,
                    queue_tx,
                    queue_capacity,
                    accepting: AtomicBool::new(true),
                    arena,
                    stats,
                    metrics,
                }),
            },
            dispatcher: Some(dispatcher),
            workers: worker_handles,
        })
    }

    /// A cloneable client handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Graceful shutdown: stops admitting, drains every already-admitted
    /// request to completion, then joins the dispatcher and workers.
    /// Outstanding [`Ticket`]s all resolve before this returns.
    pub fn shutdown(mut self) {
        self.handle.inner.accepting.store(false, Ordering::Release);
        // FIFO: every job admitted before this marker is dispatched
        // ahead of it. The blocking send also waits out a full queue.
        let _ = self.handle.inner.queue_tx.send(Job::Shutdown);
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Pulls admitted jobs, coalescing same-(dataset, version) predicts
/// that arrive within `window` into one column-stable GEMM of at most
/// `max_batch_cols` columns. Jobs that cannot join the open batch are
/// deferred (order across *different* datasets may shift by at most one
/// window; order within a dataset is preserved).
fn run_dispatcher(
    queue_rx: &Receiver<Job>,
    work_tx: &Sender<Work>,
    window: Duration,
    max_batch_cols: usize,
    workers: usize,
    stats: &Stats,
    metrics: &ServerMetrics,
) {
    let mut deferred: VecDeque<Job> = VecDeque::new();
    let mut draining = false;
    loop {
        let job = match deferred.pop_front() {
            Some(j) => j,
            None if draining => break,
            None => match queue_rx.recv() {
                Ok(j) => j,
                Err(_) => break,
            },
        };
        match job {
            Job::Shutdown => {
                // Deferred jobs (admitted before the marker) still drain;
                // one more pass flushes them without opening windows.
                draining = true;
            }
            Job::Train(t) => {
                if work_tx.send(Work::Train(t)).is_err() {
                    break;
                }
            }
            Job::Predict(first) => {
                let mut batch = vec![first];
                let mut cols = batch[0].features.cols();
                if !draining && max_batch_cols > 1 {
                    let deadline = Instant::now() + window;
                    while cols < max_batch_cols {
                        let remaining = deadline.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            break;
                        }
                        match queue_rx.recv_timeout(remaining) {
                            Ok(Job::Predict(p))
                                if p.dataset == batch[0].dataset
                                    && p.version == batch[0].version
                                    && cols + p.features.cols() <= max_batch_cols =>
                            {
                                cols += p.features.cols();
                                batch.push(p);
                            }
                            Ok(other) => deferred.push_back(other),
                            Err(RecvTimeoutError::Timeout) => break,
                            Err(RecvTimeoutError::Disconnected) => {
                                draining = true;
                                break;
                            }
                        }
                    }
                }
                stats.predict_batches.fetch_add(1, Ordering::Relaxed);
                if batch.len() > 1 {
                    stats
                        .coalesced_predicts
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                }
                metrics.batch_width_cols.record(cols as u64);
                metrics.batch_jobs.record(batch.len() as u64);
                metrics
                    .window_occupancy_pct
                    .record((cols * 100 / max_batch_cols) as u64);
                if work_tx.send(Work::PredictBatch(batch)).is_err() {
                    break;
                }
            }
        }
    }
    for _ in 0..workers {
        let _ = work_tx.send(Work::Shutdown);
    }
}

fn run_worker(
    idx: usize,
    kernel_threads: usize,
    work_rx: &Receiver<Work>,
    arena: &WorkspaceArena,
    stats: &Stats,
    metrics: &ServerMetrics,
) {
    // The satellite guard: each worker caps its kernel parallelism so
    // the pool as a whole never oversubscribes the machine.
    set_thread_budget(kernel_threads);
    while let Ok(work) = work_rx.recv() {
        // Everything recorded below is a relaxed atomic add through a
        // pre-registered handle: no allocation, so instrumented workers
        // stay inside the steady-state zero-allocation contract.
        let exec_start = metrics.now_us();
        match work {
            Work::Shutdown => break,
            // Counters bump BEFORE the replies go out, so a client that
            // has its response in hand always observes them counted.
            Work::Train(job) => {
                stats.trains_done.fetch_add(1, Ordering::Relaxed);
                metrics
                    .train_queue_wait_us
                    .record(exec_start.saturating_sub(job.admitted_us));
                let _exec = span(metrics.clock(), &metrics.worker_exec_us);
                let mut ws = arena.lease(idx);
                execute_train(job, &mut ws, metrics);
            }
            Work::PredictBatch(jobs) => {
                stats
                    .predicts_done
                    .fetch_add(jobs.len() as u64, Ordering::Relaxed);
                for job in &jobs {
                    metrics
                        .queue_wait_us
                        .record(exec_start.saturating_sub(job.admitted_us));
                }
                let _exec = span(metrics.clock(), &metrics.worker_exec_us);
                let mut ws = arena.lease(idx);
                execute_predict_batch(jobs, &mut ws, metrics);
            }
        }
        metrics
            .worker_busy_us
            .add(metrics.now_us().saturating_sub(exec_start));
    }
}

fn execute_train(job: TrainJob, ws: &mut Workspace, metrics: &ServerMetrics) {
    let mut model = LinearRegression::new(job.config);
    let result = model
        .fit_with_workspace(&job.table, &job.labels, ws)
        .map_err(ServeError::from)
        .and_then(|()| {
            let coefficients = model
                .coefficients()
                .cloned()
                .ok_or(ServeError::Ml(MlError::NotFitted))?;
            Ok(TrainResponse {
                dataset: job.dataset,
                version: job.version,
                coefficients,
                epochs_run: model.loss_history().len(),
            })
        });
    // Latency records BEFORE the reply goes out, so a client holding
    // its response always finds its request in the histogram.
    metrics
        .train_latency_us
        .record(metrics.now_us().saturating_sub(job.admitted_us));
    let _ = job.reply.send(result);
}

/// Runs one (dataset, version) batch through a single column-stable
/// GEMM and scatters the result columns back to their requesters.
/// Scratch (the coalesced rhs/out) comes from the worker's arena shard,
/// so steady-state batches allocate nothing fresh; only the response
/// matrices handed to clients are freshly allocated.
fn execute_predict_batch(jobs: Vec<PredictJob>, ws: &mut Workspace, metrics: &ServerMetrics) {
    let batched_with = jobs.len();

    if batched_with <= 1 {
        // The dispatcher never sends an empty batch; an empty Vec simply
        // has no requester to answer.
        if let Some(job) = jobs.into_iter().next() {
            let (r_t, _) = job.table.target_shape();
            let k = job.features.cols();
            let mut out = ws.take_matrix(r_t, k);
            let result = job
                .table
                .lmm_into(&job.features, &mut out, ws)
                .map(|()| PredictResponse {
                    dataset: job.dataset.clone(),
                    version: job.version,
                    predictions: out.clone(),
                    batched_with,
                })
                .map_err(ServeError::from);
            ws.give_matrix(out);
            metrics
                .predict_latency_us
                .record(metrics.now_us().saturating_sub(job.admitted_us));
            let _ = job.reply.send(result);
        }
        return;
    }

    let table = &jobs[0].table;
    let (r_t, c_t) = table.target_shape();

    let total_cols: usize = jobs.iter().map(|j| j.features.cols()).sum();
    let mut rhs = ws.take_matrix(c_t, total_cols);
    {
        // Column-concatenate the requests' feature matrices (row-major).
        let dst = rhs.as_mut_slice();
        let mut offset = 0;
        for job in &jobs {
            let k = job.features.cols();
            let src = job.features.as_slice();
            for i in 0..c_t {
                dst[i * total_cols + offset..i * total_cols + offset + k]
                    .copy_from_slice(&src[i * k..(i + 1) * k]);
            }
            offset += k;
        }
    }
    let mut out = ws.take_matrix(r_t, total_cols);
    let gemm = table
        .lmm_colstable_into(&rhs, &mut out, ws)
        .map_err(ServeError::from);

    match gemm {
        Err(e) => {
            // Shapes were validated at admission, so this is exceptional;
            // every requester learns about it.
            let msg = format!("{e}");
            for job in &jobs {
                metrics
                    .predict_latency_us
                    .record(metrics.now_us().saturating_sub(job.admitted_us));
                let _ = job.reply.send(Err(ServeError::BadRequest(msg.clone())));
            }
        }
        Ok(()) => {
            let src = out.as_slice();
            let mut offset = 0;
            for job in &jobs {
                let k = job.features.cols();
                let mut predictions = DenseMatrix::zeros(r_t, k);
                {
                    let dst = predictions.as_mut_slice();
                    for i in 0..r_t {
                        dst[i * k..(i + 1) * k].copy_from_slice(
                            &src[i * total_cols + offset..i * total_cols + offset + k],
                        );
                    }
                }
                offset += k;
                metrics
                    .predict_latency_us
                    .record(metrics.now_us().saturating_sub(job.admitted_us));
                let _ = job.reply.send(Ok(PredictResponse {
                    dataset: job.dataset.clone(),
                    version: job.version,
                    predictions,
                    batched_with,
                }));
            }
        }
    }
    ws.give_matrix(rhs);
    ws.give_matrix(out);
}
