//! End-to-end serving tests: batching equivalence (bit-identical),
//! admission control, graceful shutdown, steady-state allocations, and
//! mixed concurrent train/predict traffic.

use amalur_catalog::DatasetRegistry;
use amalur_data::{generate_two_source, TwoSourceSpec};
use amalur_factorize::FactorizedTable;
use amalur_matrix::DenseMatrix;
use amalur_ml::LinRegConfig;
use amalur_serve::{PredictRequest, ServeError, Server, ServerConfig, TrainRequest};
use std::sync::Arc;
use std::time::Duration;

fn fixture(seed: u64) -> FactorizedTable {
    let spec = TwoSourceSpec {
        rows_s1: 120,
        cols_s1: 3,
        rows_s2: 30,
        cols_s2: 8,
        seed,
        ..TwoSourceSpec::default()
    };
    let (md, data) = generate_two_source(&spec).unwrap();
    FactorizedTable::new(md, data).unwrap()
}

fn registry_with(name: &str, seed: u64) -> Arc<DatasetRegistry<FactorizedTable>> {
    let registry = Arc::new(DatasetRegistry::new());
    registry.register(name, fixture(seed)).unwrap();
    registry
}

fn feature_col(c_t: usize, tag: u64) -> DenseMatrix {
    let vals: Vec<f64> = (0..c_t)
        .map(|i| ((i as f64) * 0.37 + tag as f64 * 1.13).sin())
        .collect();
    DenseMatrix::from_vec(c_t, 1, vals).unwrap()
}

#[test]
fn batched_predictions_are_bit_identical_to_unbatched() {
    let registry = registry_with("ds", 7);
    let table = registry.fetch("ds").unwrap().data;
    let (_, c_t) = table.target_shape();
    let n_requests = 8;

    // Reference: each request served with no coalescing at all.
    let solo = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 1,
            max_batch_cols: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let solo_handle = solo.handle();
    let solo_answers: Vec<DenseMatrix> = (0..n_requests)
        .map(|i| {
            let resp = solo_handle
                .predict(PredictRequest {
                    dataset: "ds".into(),
                    version: None,
                    features: feature_col(c_t, i),
                })
                .unwrap();
            assert_eq!(resp.batched_with, 1);
            resp.predictions
        })
        .collect();
    solo.shutdown();

    // Batched: submit all tickets first so the dispatcher has companions
    // to coalesce inside its (generous) window.
    let batched = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 1,
            max_batch_cols: 16,
            batch_window: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let handle = batched.handle();
    let tickets: Vec<_> = (0..n_requests)
        .map(|i| {
            handle
                .submit_predict(PredictRequest {
                    dataset: "ds".into(),
                    version: None,
                    features: feature_col(c_t, i),
                })
                .unwrap()
        })
        .collect();
    let mut saw_coalesced = false;
    for (ticket, expected) in tickets.into_iter().zip(&solo_answers) {
        let resp = ticket.wait().unwrap();
        saw_coalesced |= resp.batched_with > 1;
        assert_eq!(resp.predictions.shape(), expected.shape());
        // Bit-identical, not approximately equal: the column-stable GEMM
        // guarantees coalescing can never change an answer.
        let got: Vec<u64> = resp
            .predictions
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let want: Vec<u64> = expected.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
    }
    let stats = handle.stats();
    assert!(
        saw_coalesced && stats.coalesced_predicts >= 2,
        "expected at least one coalesced batch, stats: {stats:?}"
    );
    assert!(stats.predict_batches < n_requests);
    batched.shutdown();
}

#[test]
fn full_queue_rejects_with_typed_overloaded() {
    let registry = registry_with("ds", 11);
    let table = registry.fetch("ds").unwrap().data;
    let (r_t, c_t) = table.target_shape();
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 1,
            queue_capacity: 2,
            max_batch_cols: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let handle = server.handle();

    // Occupy the only worker with a long training job...
    let train = handle
        .submit_train(TrainRequest {
            dataset: "ds".into(),
            version: None,
            labels: DenseMatrix::from_vec(r_t, 1, vec![1.0; r_t]).unwrap(),
            config: LinRegConfig {
                epochs: 5_000,
                learning_rate: 1e-4,
                ..LinRegConfig::default()
            },
        })
        .unwrap();
    // ...then flood predicts until the bounded queue pushes back.
    let mut accepted = Vec::new();
    let mut overloaded = false;
    for i in 0..1_000 {
        match handle.submit_predict(PredictRequest {
            dataset: "ds".into(),
            version: None,
            features: feature_col(c_t, i),
        }) {
            Ok(t) => accepted.push(t),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, 2);
                overloaded = true;
                break;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(overloaded, "bounded queue never reported Overloaded");
    assert!(handle.stats().rejected >= 1);
    // Everything that was admitted still completes.
    train.wait().unwrap();
    for t in accepted {
        t.wait().unwrap();
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_admitted_requests_then_rejects_new_ones() {
    let registry = registry_with("ds", 13);
    let c_t = registry.fetch("ds").unwrap().data.target_shape().1;
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            batch_window: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let handle = server.handle();
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            handle
                .submit_predict(PredictRequest {
                    dataset: "ds".into(),
                    version: None,
                    features: feature_col(c_t, i),
                })
                .unwrap()
        })
        .collect();
    server.shutdown();
    // Every admitted ticket resolved successfully during the drain.
    for t in tickets {
        t.wait().unwrap();
    }
    assert!(matches!(
        handle.predict(PredictRequest {
            dataset: "ds".into(),
            version: None,
            features: feature_col(c_t, 0),
        }),
        Err(ServeError::ShuttingDown)
    ));
}

#[test]
fn steady_state_serving_is_workspace_allocation_free() {
    let registry = registry_with("ds", 17);
    let c_t = registry.fetch("ds").unwrap().data.target_shape().1;
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 1,
            max_batch_cols: 4,
            batch_window: Duration::from_micros(50),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let handle = server.handle();
    let send_round = |round: u64| {
        let tickets: Vec<_> = (0..4)
            .map(|i| {
                handle
                    .submit_predict(PredictRequest {
                        dataset: "ds".into(),
                        version: None,
                        features: feature_col(c_t, round * 10 + i),
                    })
                    .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
    };
    for round in 0..5 {
        send_round(round); // warm the worker's arena shard
    }
    let warm = handle.fresh_workspace_allocations();
    assert!(warm > 0, "warm-up must have populated the pool");
    for round in 5..45 {
        send_round(round);
    }
    assert_eq!(
        handle.fresh_workspace_allocations(),
        warm,
        "steady-state serving allocated fresh workspace buffers"
    );
    server.shutdown();
}

#[test]
fn unknown_dataset_and_bad_shapes_fail_at_admission() {
    let registry = registry_with("ds", 19);
    let c_t = registry.fetch("ds").unwrap().data.target_shape().1;
    let server =
        Server::start(Arc::clone(&registry), ServerConfig::default()).expect("server starts");
    let handle = server.handle();
    assert!(matches!(
        handle.predict(PredictRequest {
            dataset: "missing".into(),
            version: None,
            features: feature_col(c_t, 0),
        }),
        Err(ServeError::Dataset(_))
    ));
    assert!(matches!(
        handle.predict(PredictRequest {
            dataset: "ds".into(),
            version: Some(99),
            features: feature_col(c_t, 0),
        }),
        Err(ServeError::Dataset(_))
    ));
    assert!(matches!(
        handle.predict(PredictRequest {
            dataset: "ds".into(),
            version: None,
            features: feature_col(c_t + 1, 0),
        }),
        Err(ServeError::BadRequest(_))
    ));
    // Rejected-at-admission requests consume no accepted slots.
    assert_eq!(handle.stats().accepted, 0);
    server.shutdown();
}

#[test]
fn concurrent_train_and_predict_traffic_stays_deterministic() {
    let registry = registry_with("ds", 23);
    let table = registry.fetch("ds").unwrap().data;
    let (r_t, c_t) = table.target_shape();
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            batch_window: Duration::from_micros(100),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let handle = server.handle();
    let labels = DenseMatrix::from_vec(r_t, 1, (0..r_t).map(|i| (i % 7) as f64).collect()).unwrap();
    let config = LinRegConfig {
        epochs: 30,
        learning_rate: 1e-3,
        ..LinRegConfig::default()
    };

    let mut clients = Vec::new();
    for t in 0..4u64 {
        let handle = handle.clone();
        let labels = labels.clone();
        let config = config.clone();
        clients.push(std::thread::spawn(move || {
            let mut coef_bits: Vec<Vec<u64>> = Vec::new();
            for i in 0..10 {
                if i % 5 == 0 {
                    let resp = handle
                        .train(TrainRequest {
                            dataset: "ds".into(),
                            version: None,
                            labels: labels.clone(),
                            config: config.clone(),
                        })
                        .unwrap();
                    coef_bits.push(
                        resp.coefficients
                            .as_slice()
                            .iter()
                            .map(|v| v.to_bits())
                            .collect(),
                    );
                } else {
                    handle
                        .predict(PredictRequest {
                            dataset: "ds".into(),
                            version: None,
                            features: feature_col(c_t, t * 100 + i),
                        })
                        .unwrap();
                }
            }
            coef_bits
        }));
    }
    let all_coefs: Vec<Vec<u64>> = clients
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    // Training is deterministic (zero init, fixed schedule): every fit of
    // the same request must produce bit-identical coefficients, no matter
    // which worker ran it or what ran concurrently.
    for c in &all_coefs[1..] {
        assert_eq!(c, &all_coefs[0]);
    }
    let stats = handle.stats();
    assert_eq!(stats.trains_done, 8);
    assert_eq!(stats.predicts_done, 32);
    server.shutdown();
}

#[test]
fn metrics_snapshot_agrees_with_stats_counters() {
    let registry = registry_with("ds", 37);
    let table = registry.fetch("ds").unwrap().data;
    let (r_t, c_t) = table.target_shape();
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 1,
            max_batch_cols: 4,
            batch_window: Duration::from_micros(50),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let handle = server.handle();
    for i in 0..9u64 {
        handle
            .predict(PredictRequest {
                dataset: "ds".into(),
                version: None,
                features: feature_col(c_t, i),
            })
            .unwrap();
    }
    handle
        .train(TrainRequest {
            dataset: "ds".into(),
            version: None,
            labels: DenseMatrix::from_vec(r_t, 1, vec![1.0; r_t]).unwrap(),
            config: LinRegConfig {
                epochs: 10,
                learning_rate: 1e-3,
                ..LinRegConfig::default()
            },
        })
        .unwrap();
    let stats = handle.stats();
    let snap = handle.metrics();

    // Every completed predict shows up in the latency and queue-wait
    // histograms; every admitted request in its counter.
    let latency = snap.histogram("serve.predict.latency_us").unwrap();
    assert_eq!(latency.count(), stats.predicts_done);
    let wait = snap.histogram("serve.predict.queue_wait_us").unwrap();
    assert_eq!(wait.count(), stats.predicts_done);
    assert_eq!(snap.counter("serve.requests.predict"), Some(9));
    assert_eq!(snap.counter("serve.requests.train"), Some(1));
    assert_eq!(snap.counter("serve.dataset.ds.predicts"), Some(9));
    assert_eq!(
        snap.histogram("serve.train.latency_us").unwrap().count(),
        stats.trains_done
    );

    // Each dispatched batch records one width / jobs / occupancy sample.
    let widths = snap.histogram("serve.batch.width_cols").unwrap();
    assert_eq!(widths.count(), stats.predict_batches);
    assert_eq!(
        snap.histogram("serve.batch.jobs").unwrap().count(),
        stats.predict_batches
    );

    // The mounted kernel-layer statics are visible through the same
    // snapshot, and the serving path drove the column-stable kernel.
    assert!(snap.counter("factorize.lmm.calls").unwrap_or(0) >= 1);
    assert!(snap.gauge("matrix.workspace.high_water_elems").unwrap_or(0) >= 1);

    // Percentiles come out monotone and the dump embeds them.
    assert!(latency.quantile(0.50) <= latency.quantile(0.95));
    assert!(latency.quantile(0.95) <= latency.quantile(0.99));
    let json = snap.to_json(0);
    assert!(json.contains("\"schema\": \"amalur-obs/v1\""));
    assert!(json.contains("serve.predict.latency_us"));
    server.shutdown();
}

#[test]
fn version_pinning_serves_the_pinned_snapshot() {
    let registry = registry_with("ds", 29);
    let c_t = registry.fetch("ds").unwrap().data.target_shape().1;
    let server =
        Server::start(Arc::clone(&registry), ServerConfig::default()).expect("server starts");
    let handle = server.handle();
    let x = feature_col(c_t, 3);
    let v1_resp = handle
        .predict(PredictRequest {
            dataset: "ds".into(),
            version: None,
            features: x.clone(),
        })
        .unwrap();
    assert_eq!(v1_resp.version, 1);

    // Publish a different table under the same name (same shape, new data).
    registry.publish("ds", fixture(31)).unwrap();
    let latest = handle
        .predict(PredictRequest {
            dataset: "ds".into(),
            version: None,
            features: x.clone(),
        })
        .unwrap();
    assert_eq!(latest.version, 2);
    let pinned = handle
        .predict(PredictRequest {
            dataset: "ds".into(),
            version: Some(1),
            features: x,
        })
        .unwrap();
    assert_eq!(pinned.version, 1);
    assert_eq!(
        pinned.predictions.as_slice(),
        v1_resp.predictions.as_slice()
    );
    assert_ne!(latest.predictions.as_slice(), pinned.predictions.as_slice());
    server.shutdown();
}
