//! Minimal, offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface the workspace's `benches/` use:
//! [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark
//! runs a short warm-up followed by `sample_size` timed batches and
//! prints the median ns/iteration; there is no statistical analysis or
//! HTML report. Use the bench targets with `harness = false`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds a label from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&format!("{name}"), 20, f);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times repeated executions of `routine`, recording one sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch-size calibration: aim for ≥ ~5 ms per batch
        // so per-call overhead is amortized for fast routines.
        let start = Instant::now();
        let mut calibration_runs = 0u32;
        while calibration_runs == 0 || start.elapsed().as_millis() < 5 {
            std::hint::black_box(routine());
            calibration_runs += 1;
            if calibration_runs >= 1_000 {
                break;
            }
        }
        let per_call = start.elapsed().as_secs_f64() / f64::from(calibration_runs);
        let batch = ((0.005 / per_call.max(1e-9)) as u64).clamp(1, 10_000);

        let timed = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        self.samples_ns
            .push(timed.elapsed().as_secs_f64() * 1e9 / batch as f64);
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples_ns: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples_ns.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    bencher
        .samples_ns
        .sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = bencher.samples_ns[bencher.samples_ns.len() / 2];
    println!("{label:<60} {:>14.1} ns/iter", median);
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_without_panicking() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls = calls.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("sum", 16), &16u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_param() {
        assert_eq!(
            BenchmarkId::new("encrypt", 1024).to_string(),
            "encrypt/1024"
        );
    }

    criterion_group!(demo_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn criterion_group_macro_produces_runnable_fn() {
        demo_group();
    }
}
