//! Minimal, offline stand-in for `crossbeam`.
//!
//! Provides [`channel::unbounded`] and [`channel::bounded`] MPMC
//! channels with cloneable senders *and* receivers (std's
//! `mpsc::Receiver` is not `Clone`, which the federated-learning
//! orchestrator and the serving worker pool rely on). Implemented as a
//! `Mutex<VecDeque>` + two `Condvar`s (item-ready / space-ready) with
//! sender/receiver reference counts for disconnect detection.
//!
//! Bounded channels add the serving layer's admission-control surface:
//! [`channel::Sender::try_send`] fails fast with
//! [`channel::TrySendError::Full`] instead of queueing unboundedly, and
//! [`channel::Receiver::recv_timeout`] gives the batching dispatcher a
//! deadline-bounded wait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Capacity bound; `None` for unbounded channels.
        cap: Option<usize>,
        /// Signalled when an item is enqueued (or endpoints disconnect).
        ready: Condvar,
        /// Signalled when an item is dequeued (space for blocked senders).
        room: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message, like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message comes back unsent.
        Full(T),
        /// Every receiver is gone; the message comes back unsent.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(msg) | TrySendError::Disconnected(msg) => msg,
            }
        }

        /// Whether the failure was a full queue (as opposed to a
        /// disconnected channel).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "sending on a full channel",
                TrySendError::Disconnected(_) => "sending on a disconnected channel",
            })
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                RecvTimeoutError::Timeout => "timed out waiting on an empty channel",
                RecvTimeoutError::Disconnected => "receiving on an empty, disconnected channel",
            })
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    fn new_pair<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            ready: Condvar::new(),
            room: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_pair(None)
    }

    /// Creates a bounded FIFO channel holding at most `cap` messages.
    ///
    /// `cap` must be at least 1 (crossbeam's zero-capacity rendezvous
    /// channels are out of scope for this shim).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded channel capacity must be >= 1");
        new_pair(Some(cap))
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, blocking while a bounded channel is at
        /// capacity; fails only when all receivers were dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self
                            .shared
                            .room
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Non-blocking enqueue: fails fast when a bounded channel is at
        /// capacity ([`TrySendError::Full`]) or every receiver is gone
        /// ([`TrySendError::Disconnected`]).
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.shared.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails when the channel is
        /// empty and every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.shared.room.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.shared.room.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
            }
        }

        /// Non-blocking variant: `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            let msg = self.shared.lock().queue.pop_front();
            if msg.is_some() {
                self.shared.room.notify_one();
            }
            msg
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.receivers -= 1;
            let disconnected = state.receivers == 0;
            drop(state);
            if disconnected {
                // Wake senders blocked on a full bounded queue so they
                // observe the disconnect instead of sleeping forever.
                self.shared.room.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, RecvTimeoutError, TrySendError};
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(
            (0..5).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cloned_endpoints_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send("a").unwrap();
        assert_eq!(rx2.recv(), Ok("a"));
        drop(tx);
        tx2.send("b").unwrap(); // still one sender alive
        assert_eq!(rx.recv(), Ok("b"));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(99).unwrap();
        assert_eq!(handle.join().unwrap(), 99);
    }

    #[test]
    fn try_send_fails_fast_when_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap(); // space freed by the recv
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn try_send_reports_disconnect_over_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        drop(rx);
        match tx.try_send(2) {
            Err(e @ TrySendError::Disconnected(_)) => {
                assert!(!e.is_full());
                assert_eq!(e.into_inner(), 2);
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the main thread receives
            2
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(handle.join().unwrap(), 2);
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u32>(4);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn queue_len_is_observable() {
        let (tx, rx) = bounded(8);
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        rx.recv().unwrap();
        assert_eq!(rx.len(), 1);
    }
}
