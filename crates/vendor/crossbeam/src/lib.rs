//! Minimal, offline stand-in for `crossbeam`.
//!
//! Provides [`channel::unbounded`] MPMC channels with cloneable senders
//! *and* receivers (std's `mpsc::Receiver` is not `Clone`, which the
//! federated-learning orchestrator relies on). Implemented as a
//! `Mutex<VecDeque>` + `Condvar` with sender/receiver reference counts
//! for disconnect detection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message, like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only when all receivers were dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails when the channel is
        /// empty and every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking variant: `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.lock().queue.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(
            (0..5).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cloned_endpoints_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send("a").unwrap();
        assert_eq!(rx2.recv(), Ok("a"));
        drop(tx);
        tx2.send("b").unwrap(); // still one sender alive
        assert_eq!(rx.recv(), Ok("b"));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(99).unwrap();
        assert_eq!(handle.join().unwrap(), 99);
    }
}
