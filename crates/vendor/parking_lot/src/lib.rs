//! Minimal, offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::RwLock` with parking_lot's non-poisoning API:
//! `read()` / `write()` return guards directly instead of `Result`s
//! (a panicked writer simply hands the lock to the next acquirer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// Re-exported read guard type (identical to the std guard).
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Re-exported write guard type (identical to the std guard).
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader–writer lock whose guards are infallible to acquire.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn concurrent_readers_do_not_block() {
        let lock = RwLock::new(5);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn survives_a_panicked_writer() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the std lock");
        })
        .join();
        assert_eq!(*lock.read(), 0); // parking_lot semantics: no poison error
    }
}
