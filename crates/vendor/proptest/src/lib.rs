//! Minimal, offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro over range strategies, [`prop_assert!`] /
//! [`prop_assert_eq!`], and [`ProptestConfig::with_cases`]. Each test
//! runs `cases` random samples drawn from a generator seeded
//! deterministically from the test name, so failures are reproducible
//! across runs; the failing inputs are printed in the panic message
//! (there is no shrinking).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// Everything a `use proptest::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the (very matrix-heavy)
        // workspace test suite fast while still exploring broadly.
        Self { cases: 64 }
    }
}

/// A failed property-test assertion.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Value generators. Only range strategies are provided.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f64);

/// Builds the deterministic per-test generator (seeded from the test
/// name via FNV-1a). Used by the [`proptest!`] expansion.
pub fn new_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::new_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", $arg));
                        )*
                        s
                    };
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n    inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e,
                            __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(a in 1usize..10, b in -2.0f64..2.0, s in 0u64..u64::MAX) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(s < u64::MAX);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_honored(x in 0usize..100) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    proptest! {
        #[allow(dead_code)]
        fn always_fails(v in 0usize..3) {
            prop_assert!(v > 100, "v was {}", v);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failure_reports_inputs() {
        always_fails();
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::Rng;
        let a: u64 = crate::new_rng("x").gen();
        let b: u64 = crate::new_rng("x").gen();
        let c: u64 = crate::new_rng("y").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
