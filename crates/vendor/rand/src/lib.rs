//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the external crates the code was written against are vendored as
//! small API-compatible subsets under `crates/vendor/`. This crate
//! implements exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` and `gen_bool`,
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]
//!   (xoshiro256++ seeded through SplitMix64),
//! * [`thread_rng`],
//! * [`distributions::Uniform`] / [`distributions::Distribution`],
//! * [`seq::SliceRandom::shuffle`].
//!
//! The streams are high-quality but deliberately **not** reproductions
//! of the upstream `rand` streams; all workspace tests assert
//! distributional or algebraic properties, never exact draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values that can be drawn uniformly from an `Rng` (the subset of the
/// upstream `Standard` distribution the workspace needs).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let offset = wide % span;
                ((self.start as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end - self.start;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + wide % span
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against the half-open upper bound being hit by rounding.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open).
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    /// Non-deterministically seeded generator returned by
    /// [`crate::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a fresh, uniquely seeded generator.
///
/// Unlike upstream `rand` this is not thread-local state: every call
/// yields an independent generator seeded from a process-wide counter
/// mixed with the current time.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(
        t ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    ))
}

/// Uniform distributions over ranges.
pub mod distributions {
    use super::RngCore;

    /// A distribution that can be sampled repeatedly.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Creates the distribution; panics when `lo >= hi`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new: empty range");
            Self { lo, hi }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            use super::SampleRange;
            (self.lo..self.hi).sample_single(rng)
        }
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    use super::SampleRange;
                    (self.lo..self.hi).sample_single(rng)
                }
            }
        )*};
    }

    impl_uniform_int!(u32, u64, usize, i32, i64);
}

/// Random sequence operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions (`shuffle`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let w = rng.gen_range(0u128..u128::MAX);
            assert!(w < u128::MAX);
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniform_distribution_matches_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new(-0.5, 0.5);
        for _ in 0..10_000 {
            let v: f64 = d.sample(&mut rng);
            assert!((-0.5..0.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn thread_rng_unique_streams() {
        let mut a = super::thread_rng();
        let mut b = super::thread_rng();
        let s1: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let s2: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(s1, s2);
    }
}
