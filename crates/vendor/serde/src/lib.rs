//! Minimal, offline stand-in for `serde`.
//!
//! Offers value-tree based [`Serialize`] / [`Deserialize`] traits plus
//! derive macros (from the sibling `serde_derive` shim) for plain
//! structs with named fields. The JSON text layer lives in the
//! `serde_json` shim; both share the [`Value`] tree defined here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A dynamically typed serialization tree (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (covers every integer field in the workspace).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError(format!("expected {expected}, found {got:?}")))
}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Extracts and deserializes object field `key` (derive-macro helper).
pub fn get_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, DeError> {
    match v.get(key) {
        Some(field) => T::from_value(field).map_err(|e| DeError(format!("field `{key}`: {}", e.0))),
        None => Err(DeError(format!("missing field `{key}`"))),
    }
}

// --- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => type_err("number", other),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range"))),
                    other => type_err("integer", other),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

// --- container impls -------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_owned()
        );
    }

    #[test]
    fn container_roundtrips() {
        let v: Vec<Vec<i64>> = vec![vec![1, -1], vec![]];
        assert_eq!(Vec::<Vec<i64>>::from_value(&v.to_value()).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1.25f64);
        assert_eq!(
            BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap(),
            m
        );

        let o: Option<String> = None;
        assert_eq!(Option::<String>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn errors_name_the_problem() {
        let err = bool::from_value(&Value::Int(1)).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
        let err = get_field::<bool>(&Value::Object(vec![]), "flag").unwrap_err();
        assert!(err.to_string().contains("missing field `flag`"));
        let err = u8::from_value(&Value::Int(500)).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
