//! Derive macros for the vendored `serde` shim.
//!
//! Supports plain (non-generic) structs with named fields — the only
//! shapes the workspace derives on. The implementation parses the raw
//! token stream directly (no `syn`/`quote`, which are unavailable
//! offline): it extracts the struct name and field names, skipping
//! attributes and visibility modifiers, and tracking `<`/`>` depth so
//! that commas inside generic field types (`Vec<Vec<i64>>`,
//! `BTreeMap<String, V>`) do not split fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Skips one attribute (`#` followed by a bracket group) if present.
fn skip_attributes(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive shim: malformed attribute: {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in …)` if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn parse_struct(input: TokenStream) -> StructShape {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "struct" => {}
        other => panic!("serde_derive shim: only structs are supported, found {other:?}"),
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected struct name, found {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic structs are not supported")
            }
            Some(_) => continue,
            None => panic!("serde_derive shim: tuple/unit structs are not supported"),
        }
    };

    let mut fields = Vec::new();
    let mut body_tokens = body.stream().into_iter().peekable();
    while body_tokens.peek().is_some() {
        skip_attributes(&mut body_tokens);
        skip_visibility(&mut body_tokens);
        let field = match body_tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        match body_tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after `{field}`, found {other:?}"),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut angle_depth = 0i32;
        loop {
            match body_tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    body_tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    body_tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    body_tokens.next();
                    break;
                }
                Some(_) => {
                    body_tokens.next();
                }
                None => break,
            }
        }
        fields.push(field);
    }
    StructShape { name, fields }
}

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let pushes: String = shape
        .fields
        .iter()
        .map(|f| {
            format!("fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let inits: String = shape
        .fields
        .iter()
        .map(|f| format!("{f}: ::serde::get_field(v, {f:?})?,\n"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok(Self {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}
