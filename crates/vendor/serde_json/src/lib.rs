//! Minimal, offline stand-in for `serde_json`.
//!
//! JSON text serialization for the vendored `serde` shim's [`Value`]
//! tree: [`to_string`], [`to_string_pretty`] and [`from_str`] with a
//! hand-rolled recursive-descent parser (string escapes, nested
//! containers, integer/float distinction, depth limit).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// A JSON serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable, two-space indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// --- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips, and always includes a `.0` for integral
                // values (matching upstream serde_json).
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            indent,
            depth,
            ('[', ']'),
            |out, item, ind, d| {
                write_value(out, item, ind, d);
            },
        ),
        Value::Object(fields) => {
            write_seq(
                out,
                fields.iter(),
                indent,
                depth,
                ('{', '}'),
                |out, (k, v), ind, d| {
                    write_string(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, ind, d);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error("maximum nesting depth exceeded".into()));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("expected `,` or `]` at {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("expected `,` or `}}` at {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("non-ascii \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid codepoint".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number bytes".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_compact() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"b\"\n".into())),
            ("count".into(), Value::Int(-3)),
            ("ratio".into(), Value::Float(0.5)),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = Value::Object(vec![("xs".into(), Value::Array(vec![Value::Int(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"xs\": [\n    1\n  ]\n"));
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn float_formatting_distinguishes_ints() {
        assert_eq!(to_string(&Value::Float(1.0)).unwrap(), "1.0");
        assert_eq!(to_string(&Value::Int(1)).unwrap(), "1");
        assert_eq!(from_str::<Value>("1.0").unwrap(), Value::Float(1.0));
        assert_eq!(from_str::<Value>("1").unwrap(), Value::Int(1));
        assert_eq!(from_str::<Value>("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str::<Value>(&deep).is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            from_str::<Value>(r#""é\t""#).unwrap(),
            Value::Str("é\t".into())
        );
    }
}
