//! To factorize or to materialize? (§IV-B, Figure 5 in miniature.)
//!
//! Sweeps silo configurations across tuple ratio × feature ratio,
//! measures which strategy actually wins, and prints the decision map
//! together with the calls made by Morpheus' heuristic and Amalur's
//! metadata-aware cost model. A compact version of the Figure 5 / Table
//! III experiments (the full harness lives in `amalur-bench`).
//!
//! Run with: `cargo run --release --example cost_optimizer`

use amalur::cost::{
    load_or_calibrate, measure_strategies, AmalurCostModel, CalibrationConfig, CostModel,
    MorpheusHeuristic, COST_PROFILE_FILE,
};
use amalur::data::TwoSourceSpec;
use amalur::prelude::*;
use std::path::Path;

fn main() {
    let workload = TrainingWorkload {
        epochs: 20,
        x_cols: 1,
    };
    let morpheus = MorpheusHeuristic::default();
    // Decide with this machine's measured operation costs (falls back to
    // a fresh calibration when COST_PROFILE.json is absent).
    let (profile, source) =
        load_or_calibrate(Path::new(COST_PROFILE_FILE), &CalibrationConfig::default());
    let amalur_model = AmalurCostModel::with_profile(profile);

    println!(
        "workload: {} GD epochs (T·θ + Tᵀ·r per epoch), {source} cost profile\n",
        workload.epochs
    );
    println!(
        "{:>6} {:>6} {:>8} {:>10} {:>12} {:>12} {:>12} {:>9}",
        "TR", "FR", "fanout", "speedup", "truth", "morpheus", "amalur", "agree"
    );

    let mut amalur_correct = 0usize;
    let mut morpheus_correct = 0usize;
    let mut total = 0usize;

    for &tuple_ratio in &[1usize, 2, 5, 10, 20] {
        for &feature_ratio in &[1usize, 4, 16, 64] {
            let rows_s1 = 20_000;
            let spec = TwoSourceSpec {
                rows_s1,
                cols_s1: 2,
                rows_s2: (rows_s1 / tuple_ratio).max(1),
                cols_s2: 2 * feature_ratio,
                shared_cols: 0,
                target_redundancy: tuple_ratio > 1,
                row_coverage: 1.0,
                source_redundancy: false,
                seed: (tuple_ratio * 100 + feature_ratio) as u64,
            };
            let (md, data) = amalur::data::generate_two_source(&spec).expect("valid spec");
            let ft = FactorizedTable::new(md, data).expect("consistent metadata");
            let features = CostFeatures::from_table(&ft);

            let measured = measure_strategies(&ft, &workload);
            let truth = measured.ground_truth();
            let m_call = morpheus.decide(&features, &workload);
            let a_call = amalur_model.decide(&features, &workload);
            total += 1;
            morpheus_correct += usize::from(m_call == truth);
            amalur_correct += usize::from(a_call == truth);

            println!(
                "{:>6} {:>6} {:>8.1} {:>9.2}x {:>12} {:>12} {:>12} {:>9}",
                tuple_ratio,
                feature_ratio,
                features.sources[1].fanout(),
                measured.speedup(),
                truth.to_string(),
                m_call.to_string(),
                a_call.to_string(),
                if a_call == truth { "✓" } else { "✗" },
            );
        }
    }

    println!(
        "\ncorrect decisions: Amalur {}/{total}, Morpheus {}/{total}",
        amalur_correct, morpheus_correct
    );
    println!("(factorization wins at high tuple×feature ratios — Figure 5's area I;");
    println!(" materialization wins at the low/low corner — area II; the boundary in");
    println!(" between is where metadata-aware cost estimation earns its keep.)");
}
