//! Feature augmentation (Use case 1, §II-B).
//!
//! "Starting from a base table S1, we augment the features by
//! introducing the table S2 and selecting the new feature o (oxygen)."
//!
//! This example scales the hospital scenario to a few thousand patients,
//! trains the mortality classifier (a) on the base table only and
//! (b) on the left-join-augmented table, and shows the accuracy gain
//! the new feature buys — plus the optimizer's factorize/materialize
//! decision for the augmented training job.
//!
//! Run with: `cargo run --release --example feature_augmentation`

use amalur::prelude::*;

fn main() {
    // 4000 ER patients; 2500 pulmonary patients; 2000 shared entities.
    let (er, pulmonary) = amalur::data::hospital::scaled_silos(4000, 2500, 2000, 7);
    println!(
        "base table S1: {} rows; discovered table S2: {} rows; ~2000 shared patients",
        er.num_rows(),
        pulmonary.num_rows()
    );

    let mut system = Amalur::new();
    system
        .register_silo(er.clone(), "er-department")
        .expect("fresh");
    system
        .register_silo(pulmonary, "pulmonary-department")
        .expect("fresh");

    // ------------------------------------------------------------------
    // Baseline: train on S1 alone (features a, hr).
    // ------------------------------------------------------------------
    let x_base = er.to_matrix(&["a", "hr"], 0.0).expect("numeric columns");
    let y_base = er.to_matrix(&["m"], 0.0).expect("label column");
    let mut baseline = LogisticRegression::new(LogRegConfig {
        epochs: 400,
        learning_rate: 1e-4,
        l2: 0.0,
    });
    baseline.fit(&x_base, &y_base).expect("baseline trains");
    let base_acc = amalur::ml::metrics::accuracy(
        &baseline.predict(&x_base).expect("fitted"),
        y_base.as_slice(),
    );
    println!("baseline (a, hr):        train accuracy {base_acc:.3}");

    // ------------------------------------------------------------------
    // Augmentation: left join S2, adding the oxygen feature (Example 3 —
    // only the base table holds labels, so a left join keeps exactly the
    // labeled population).
    // ------------------------------------------------------------------
    let handle = system
        .integrate(
            "S1",
            "S2",
            ScenarioKind::LeftJoin,
            &IntegrationOptions::with_exact_key("n", "n"),
        )
        .expect("hospital tables integrate");
    println!(
        "augmented target schema: T({}) with {} rows",
        handle.table.metadata().target_columns.join(", "),
        handle.table.target_shape().0
    );

    // The optimizer's call for this workload.
    let workload = TrainingWorkload {
        epochs: 400,
        x_cols: 1,
    };
    let plan = system.plan(&handle, &workload, &Constraints::default());
    println!("optimizer decision for the augmented job: {plan}");

    let config = TrainingConfig {
        epochs: 400,
        learning_rate: 1e-4,
        l2: 0.0,
    };
    let augmented = system
        .train_logistic_regression(&handle, 0, &config, plan)
        .expect("augmented training succeeds");
    let aug_acc = augmented.metrics["train_accuracy"];
    println!("augmented (a, hr, o):    train accuracy {aug_acc:.3}");
    println!(
        "feature augmentation gain: {:+.3} accuracy points",
        aug_acc - base_acc
    );
    assert!(
        aug_acc > base_acc,
        "oxygen is a planted signal — augmentation must help"
    );

    // The catalog remembers what was trained on what.
    let lineage = system.catalog().models_trained_on(&handle.id);
    println!("catalog lineage for {}: {lineage:?}", handle.id);
}
