//! Vertical federated learning over the drug-risk silos (Use case 2).
//!
//! §I's motivating example: "the features can reside in datasets
//! collected from clinics, hospitals, pharmacies, and laboratories".
//! Four silos hold vertical slices of the same patients; privacy
//! constraints forbid centralizing the data, so Amalur splits the
//! learning process (§II-C) and the orchestrator aggregates partial
//! predictions under three wire-protection modes. The example verifies
//! the federated model matches centralized training and reports the
//! communication/encryption overhead of each mode (§V-B's open
//! question, measured).
//!
//! Run with: `cargo run --release --example federated_learning`

use amalur::federated::{train_vfl, VflConfig};
use amalur::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Build the four vertically-partitioned silos (600 shared patients).
    // ------------------------------------------------------------------
    let silos = amalur::data::workloads::drug_risk_silos(600, 0.0, 3);
    let (clinic, hospital, pharmacy, lab) = (&silos[0], &silos[1], &silos[2], &silos[3]);
    println!("silos:");
    for t in &silos {
        println!(
            "  {}: {} rows, schema {}",
            t.name(),
            t.num_rows(),
            t.schema()
        );
    }

    // Aligned feature blocks per party (shared pid; same row order since
    // missing = 0). The label (adverse_event) stays with the clinic. We
    // predict a *risk score*: the regression target is the planted
    // logit's observable proxy — here we use the label itself, which
    // makes federated-vs-centralized equivalence easy to verify.
    let xa = clinic.to_matrix(&["age", "weight"], 0.0).expect("numeric");
    let xb = hospital.to_matrix(&["sbp", "dbp"], 0.0).expect("numeric");
    let xc = pharmacy
        .to_matrix(&["dose", "n_drugs"], 0.0)
        .expect("numeric");
    let xd = lab.to_matrix(&["creatinine", "alt"], 0.0).expect("numeric");
    let y = clinic.to_matrix(&["adverse_event"], 0.0).expect("label");
    let features = vec![xa, xb, xc, xd];

    // Standardize per party (each silo can do this locally).
    let features: Vec<DenseMatrix> = features.into_iter().map(|x| standardize(&x)).collect();

    // ------------------------------------------------------------------
    // Train under each privacy mode and compare with centralized GD.
    // ------------------------------------------------------------------
    let epochs = 150;
    let lr = 0.5;

    let concat = features.iter().skip(1).fold(features[0].clone(), |acc, x| {
        acc.hstack(x).expect("aligned")
    });
    let centralized = centralized_gd(&concat, &y, epochs, lr);

    println!(
        "\n{:<16} {:>12} {:>14} {:>14} {:>12}",
        "mode", "final loss", "traffic", "crypto time", "max |Δθ|"
    );
    for mode in [
        PrivacyMode::Plaintext,
        PrivacyMode::SecretShared,
        PrivacyMode::Paillier { key_bits: 256 },
    ] {
        let result = train_vfl(
            &features,
            &y,
            &VflConfig {
                epochs,
                learning_rate: lr,
                l2: 0.0,
                privacy: mode,
                ..VflConfig::default()
            },
        )
        .expect("protocol completes");
        let stacked = result
            .coefficients
            .iter()
            .skip(1)
            .fold(result.coefficients[0].clone(), |acc, c| {
                acc.vstack(c).expect("column vectors")
            });
        let max_diff = stacked.max_abs_diff(&centralized).expect("same shape");
        println!(
            "{:<16} {:>12.6} {:>11} kB {:>11.1} ms {:>12.2e}",
            mode.to_string(),
            result.loss_history.last().expect("epochs > 0"),
            result.comm.total_bytes() / 1024,
            result.comm.crypto_time.as_secs_f64() * 1e3,
            max_diff,
        );
        let tol = match mode {
            PrivacyMode::Plaintext => 1e-9,
            _ => 1e-2, // fixed-point quantization
        };
        assert!(
            max_diff < tol,
            "{mode}: federated model diverged from centralized ({max_diff})"
        );
    }
    println!("\nall federated models match centralized training ✓");
    println!("(secret sharing ≈ free; Paillier pays the homomorphic-encryption bill — §V-B)");
}

/// Column-wise standardization to zero mean / unit variance.
fn standardize(x: &DenseMatrix) -> DenseMatrix {
    let n = x.rows() as f64;
    let mut out = x.clone();
    for j in 0..x.cols() {
        let col = x.col(j);
        let mean = col.iter().sum::<f64>() / n;
        let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-9);
        for i in 0..x.rows() {
            out.set(i, j, (x.get(i, j) - mean) / std);
        }
    }
    out
}

/// Plain centralized gradient descent with the identical update rule.
fn centralized_gd(x: &DenseMatrix, y: &DenseMatrix, epochs: usize, lr: f64) -> DenseMatrix {
    let n = x.rows() as f64;
    let mut theta = DenseMatrix::zeros(x.cols(), 1);
    for _ in 0..epochs {
        let resid = x.matmul(&theta).expect("shapes").sub(y).expect("shapes");
        let grad = x.transpose_matmul(&resid).expect("shapes");
        theta.axpy_assign(-lr / n, &grad).expect("shapes");
    }
    theta
}
