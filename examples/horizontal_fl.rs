//! Horizontal federated learning over keyboard silos (Example 4 / HFL).
//!
//! §I's second motivating example: "training models for keyboard stroke
//! prediction requires data from millions of phones". Each phone holds
//! the same feature schema over its own users (the union scenario);
//! FedAvg trains a shared next-keystroke-timing model without the raw
//! strokes ever leaving a phone, optionally with differential privacy
//! on the model updates.
//!
//! Run with: `cargo run --release --example horizontal_fl`

use amalur::federated::{train_fedavg, HflConfig};
use amalur::integration::integrate_union;
use amalur::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 12 phones × 400 keystrokes, disjoint users, one shared signal.
    // ------------------------------------------------------------------
    let phones = amalur::data::workloads::keyboard_silos(12, 400, 9);
    println!(
        "{} phones, {} strokes each",
        phones.len(),
        phones[0].num_rows()
    );

    // The union scenario through the DI layer: shared feature schema,
    // disjoint rows — Amalur's metadata confirms there is no redundancy,
    // i.e. nothing for factorization to exploit (Example IV.1).
    let refs: Vec<&Table> = phones.iter().collect();
    let union = integrate_union(&refs, "uid", 0.0).expect("phones share a schema");
    println!(
        "union target: {} rows × {} cols; redundancy-free: {}",
        union.metadata.target_rows,
        union.metadata.target_cols(),
        union
            .metadata
            .sources
            .iter()
            .all(|s| s.redundancy.is_all_ones()),
    );

    // ------------------------------------------------------------------
    // FedAvg with and without differential privacy.
    // ------------------------------------------------------------------
    let feature_cols = ["dwell_ms", "flight_ms", "pressure", "x", "y"];
    let parties: Vec<PartySamples> = phones
        .iter()
        .map(|t| {
            let x = standardize(&t.to_matrix(&feature_cols, 0.0).expect("numeric"));
            // Bias column: the target has a large mean the slopes alone
            // cannot express.
            let bias = DenseMatrix::ones(x.rows(), 1);
            PartySamples {
                name: t.name().to_owned(),
                x: x.hstack(&bias).expect("same rows"),
                y: t.to_matrix(&["next_flight_ms"], 0.0).expect("target"),
            }
        })
        .collect();

    println!(
        "\n{:<22} {:>12} {:>12} {:>10}",
        "configuration", "first loss", "final loss", "rounds"
    );
    for (label, dp) in [
        ("fedavg", None),
        ("fedavg + DP(ε=1.0)", Some((0.05, 1.0))),
        ("fedavg + DP(ε=0.1)", Some((0.05, 0.1))),
    ] {
        let config = HflConfig {
            rounds: 60,
            local_epochs: 2,
            learning_rate: 0.1,
            dp,
            seed: 11,
            ..HflConfig::default()
        };
        let result = train_fedavg(&parties, &config).expect("protocol completes");
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>10}",
            label,
            result.loss_history.first().expect("rounds > 0"),
            result.loss_history.last().expect("rounds > 0"),
            config.rounds,
        );
    }
    println!("\n(the privacy budget buys noise: smaller ε ⇒ worse final loss — the");
    println!(" §V-B accuracy/privacy trade-off, observable per configuration)");

    // ------------------------------------------------------------------
    // Sanity: the federated model predicts held-out strokes.
    // ------------------------------------------------------------------
    let result = train_fedavg(
        &parties,
        &HflConfig {
            rounds: 120,
            local_epochs: 2,
            learning_rate: 0.1,
            dp: None,
            seed: 11,
            ..HflConfig::default()
        },
    )
    .expect("protocol completes");
    let test = &parties[0];
    let pred = test.x.matmul(&result.global).expect("aligned");
    let r2 = amalur::ml::metrics::r2(pred.as_slice(), test.y.as_slice());
    println!("\nglobal model R² on phone0: {r2:.3}");
    assert!(r2 > 0.9, "the planted shared signal must be learnable");
}

/// Column-wise standardization to zero mean / unit variance.
fn standardize(x: &DenseMatrix) -> DenseMatrix {
    let n = x.rows() as f64;
    let mut out = x.clone();
    for j in 0..x.cols() {
        let col = x.col(j);
        let mean = col.iter().sum::<f64>() / n;
        let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-9);
        for i in 0..x.rows() {
            out.set(i, j, (x.get(i, j) - mean) / std);
        }
    }
    out
}
