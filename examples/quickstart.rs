//! Quickstart: the paper's running example, end to end.
//!
//! Reproduces Figure 2 (the hospital tables and their integration) and
//! Figure 4 (mapping, indicator and redundancy matrices; the LMM
//! rewrite), then trains the motivating mortality classifier both
//! materialized and factorized and shows the results agree.
//!
//! Run with: `cargo run --example quickstart`

use amalur::prelude::*;

fn print_matrix(name: &str, m: &DenseMatrix) {
    println!("{name} ({}x{}):", m.rows(), m.cols());
    for i in 0..m.rows() {
        let row: Vec<String> = m.row(i).iter().map(|v| format!("{v:>6.1}")).collect();
        println!("  [{}]", row.join(" "));
    }
}

fn main() {
    // ------------------------------------------------------------------
    // Figure 2a-b: the source tables of the ER and pulmonary departments.
    // ------------------------------------------------------------------
    let s1 = amalur::data::hospital::s1();
    let s2 = amalur::data::hospital::s2();
    println!("== Figure 2: source tables ==\n{s1}\n{s2}");

    // ------------------------------------------------------------------
    // Integration: schema matching + entity resolution discover that
    // S1.m↔S2.m, S1.a↔S2.a and that S1's Jane is S2's Jane.
    // ------------------------------------------------------------------
    let mut system = Amalur::new();
    system
        .register_silo(s1, "er-department")
        .expect("fresh system");
    system
        .register_silo(s2, "pulmonary-department")
        .expect("fresh system");
    let handle = system
        .integrate(
            "S1",
            "S2",
            ScenarioKind::FullOuterJoin,
            &IntegrationOptions::with_key("n", "n"),
        )
        .expect("running example integrates");

    println!("== Schema mappings (tgds of Table I, Example 1) ==");
    let di = system
        .catalog()
        .integration(&handle.id)
        .expect("registered");
    for tgd in &di.tgds {
        println!("  {tgd}");
    }

    // ------------------------------------------------------------------
    // Figure 4a: mapping matrices (full and compressed).
    // ------------------------------------------------------------------
    let md = handle.table.metadata();
    println!("\n== Figure 4a: mapping matrices ==");
    println!("target schema T({})", md.target_columns.join(", "));
    for s in &md.sources {
        println!("CM_{} = {:?}", s.name, s.mapping.compressed());
        print_matrix(&format!("M_{}", s.name), &s.mapping.to_dense());
    }

    // ------------------------------------------------------------------
    // Figure 4b: compressed indicator matrices and the data matrices Dₖ.
    // ------------------------------------------------------------------
    println!("\n== Figure 4b: indicator matrices ==");
    for s in &md.sources {
        println!("CI_{} = {:?}", s.name, s.indicator.compressed());
    }
    for (s, d) in md.sources.iter().zip(handle.table.source_data()) {
        print_matrix(
            &format!("D_{} (cols: {})", s.name, s.mapped_columns.join(",")),
            d,
        );
    }

    // ------------------------------------------------------------------
    // Figure 4c: redundancy matrix and the LMM rewrite.
    // ------------------------------------------------------------------
    println!("\n== Figure 4c: redundancy matrix and LMM rewrite ==");
    let r2 = &md.sources[1].redundancy;
    print_matrix("R_S2", &r2.to_dense());
    println!("(zeros mark Jane's m and a cells — S2 repeats what S1 already contributed)");
    let t1 = handle.table.intermediate(0).expect("shape-checked");
    let t2 = handle.table.intermediate(1).expect("shape-checked");
    print_matrix("T1 = I1 D1 M1'", &t1);
    print_matrix("T2 = I2 D2 M2'", &t2);
    let t = handle.table.materialize();
    print_matrix("T = T1 + T2 ∘ R2 (Figure 2d)", &t);

    // T·X via Equation (2) vs the materialized product.
    let x = DenseMatrix::from_rows(&[
        vec![6.0, 5.0],
        vec![3.0, 2.0],
        vec![2.0, 2.0],
        vec![4.0, 2.0],
    ])
    .expect("static operand");
    let materialized = t.matmul(&x).expect("shapes agree");
    let factorized = handle
        .table
        .lmm(&x, Strategy::Compressed)
        .expect("shapes agree");
    print_matrix("T·X (materialized)", &materialized);
    print_matrix("T·X (factorized, Eq. 2)", &factorized);
    assert!(factorized.approx_eq(&materialized, 1e-9));
    println!("factorized ≡ materialized ✓");

    // ------------------------------------------------------------------
    // The motivating task: predict mortality m from (a, hr, o).
    // ------------------------------------------------------------------
    println!("\n== Mortality classifier: factorized vs materialized ==");
    let config = TrainingConfig {
        epochs: 200,
        learning_rate: 1e-4,
        l2: 0.0,
    };
    let fact = system
        .train_logistic_regression(&handle, 0, &config, ExecutionPlan::Factorize)
        .expect("training succeeds");
    let mat = system
        .train_logistic_regression(&handle, 0, &config, ExecutionPlan::Materialize)
        .expect("training succeeds");
    println!(
        "factorized   loss {:.6}  accuracy {:.2}",
        fact.final_loss, fact.metrics["train_accuracy"]
    );
    println!(
        "materialized loss {:.6}  accuracy {:.2}",
        mat.final_loss, mat.metrics["train_accuracy"]
    );
    assert!(fact.coefficients.approx_eq(&mat.coefficients, 1e-9));
    println!("identical coefficients ✓");

    println!("\n== Catalog after the run ==");
    println!("{}", system.catalog().to_json().expect("serializable"));
}
