//! # Amalur — Data Integration Meets Machine Learning
//!
//! A from-scratch Rust reproduction of *Amalur: Data Integration Meets
//! Machine Learning* (Hai et al., ICDE 2023): factorized and federated
//! machine learning over data silos, driven by data-integration
//! metadata.
//!
//! ## The idea in one paragraph
//!
//! Training data lives in silos `S1 … Sn`. A data integration system
//! knows how the silos relate — which columns correspond (schema
//! matching), which rows refer to the same entity (entity resolution).
//! Amalur encodes that knowledge as three matrices per source — the
//! **mapping matrix** `Mₖ`, the **indicator matrix** `Iₖ` and the
//! **redundancy matrix** `Rₖ` — and then *rewrites* ML computations over
//! the never-materialized target table `T` into computations over the
//! sources:
//!
//! ```text
//! T·X = I₁D₁M₁ᵀ·X + ((I₂D₂M₂ᵀ) ∘ R₂)·X        (Equation 2)
//! ```
//!
//! The same metadata powers the factorize-vs-materialize cost optimizer
//! and aligns parties for federated learning.
//!
//! ## Quickstart
//!
//! ```
//! use amalur::prelude::*;
//!
//! // The paper's Figure 2 hospital tables.
//! let mut system = Amalur::new();
//! system.register_silo(amalur::data::hospital::s1(), "er").unwrap();
//! system.register_silo(amalur::data::hospital::s2(), "pulmonary").unwrap();
//!
//! // Integrate: schema matching + entity resolution + the three matrices.
//! let handle = system
//!     .integrate("S1", "S2", ScenarioKind::FullOuterJoin,
//!                &IntegrationOptions::with_key("n", "n"))
//!     .unwrap();
//! assert_eq!(handle.table.target_shape(), (6, 4)); // T(m, a, hr, o)
//!
//! // Factorized result ≡ materialized result.
//! let t = handle.table.materialize();
//! let x = DenseMatrix::ones(4, 1);
//! let fact = handle.table.lmm(&x, Strategy::Compressed).unwrap();
//! assert!(fact.approx_eq(&t.matmul(&x).unwrap(), 1e-9));
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`matrix`] | dense/sparse linear algebra substrate |
//! | [`relational`] | tables, joins, CSV — the materialization substrate |
//! | [`integration`] | tgds, schema matching, ER, the three matrices |
//! | [`factorize`] | `FactorizedTable` and the rewrite rules |
//! | [`ml`] | linear/logistic regression, K-Means, GNMF over `LinOps` |
//! | [`cost`] | Morpheus heuristic vs Amalur cost model, oracle |
//! | [`crypto`] | bignum, Paillier, secret sharing, differential privacy |
//! | [`federated`] | VFL linear regression, FedAvg, party alignment |
//! | [`catalog`] | the hybrid metadata catalog |
//! | [`data`] | synthetic silo generators |
//! | [`core`] | the `Amalur` system facade |

#![forbid(unsafe_code)]

pub use amalur_catalog as catalog;
pub use amalur_core as core;
pub use amalur_cost as cost;
pub use amalur_crypto as crypto;
pub use amalur_data as data;
pub use amalur_factorize as factorize;
pub use amalur_federated as federated;
pub use amalur_integration as integration;
pub use amalur_matrix as matrix;
pub use amalur_ml as ml;
pub use amalur_relational as relational;

/// The most common imports in one place.
pub mod prelude {
    pub use amalur_catalog::MetadataCatalog;
    pub use amalur_core::{
        Amalur, Constraints, ExecutionPlan, IntegrationHandle, TrainedModel, TrainingConfig,
    };
    pub use amalur_cost::{
        AmalurCostModel, CostFeatures, CostModel, Decision, HardwareProfile, MorpheusHeuristic,
        TrainingWorkload,
    };
    pub use amalur_factorize::{FactorizedTable, LinOps, Strategy};
    pub use amalur_federated::{PartySamples, PrivacyMode};
    pub use amalur_integration::{IntegrationOptions, ScenarioKind};
    pub use amalur_matrix::DenseMatrix;
    pub use amalur_ml::{
        Gnmf, GnmfConfig, KMeans, KMeansConfig, LinRegConfig, LinearRegression, LogRegConfig,
        LogisticRegression,
    };
    pub use amalur_relational::{DataType, Table, TableBuilder, Value};
}
