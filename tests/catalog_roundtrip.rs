//! Catalog persistence: the hybrid metadata catalog must survive a full
//! JSON round trip with every entry kind — source, DI metadata, model —
//! and keep its lineage queries intact.

use amalur::catalog::{DiEntry, MetadataCatalog, ModelEntry, SourceEntry};
use amalur::integration::integrate_pair;
use amalur::prelude::*;
use std::collections::BTreeMap;

#[test]
fn full_catalog_roundtrip_through_file() {
    let dir = std::env::temp_dir().join("amalur_catalog_roundtrip");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("catalog.json");

    let s1 = amalur::data::hospital::s1();
    let s2 = amalur::data::hospital::s2();
    let catalog = MetadataCatalog::new();

    // Source entries straight from the tables.
    catalog
        .register_source(SourceEntry::from_table(&s1, "er-department"))
        .expect("fresh");
    catalog
        .register_source(SourceEntry::from_table(&s2, "pulmonary-department"))
        .expect("fresh");

    // DI entry from a real integration run.
    let result = integrate_pair(
        &s1,
        &s2,
        ScenarioKind::FullOuterJoin,
        &IntegrationOptions::with_key("n", "n"),
    )
    .expect("running example integrates");
    catalog
        .register_integration(DiEntry::from_metadata(
            "hospital-join",
            ScenarioKind::FullOuterJoin,
            &result.metadata,
            &result.tgds,
        ))
        .expect("fresh id");

    // A model entry with lineage.
    let mut metrics = BTreeMap::new();
    metrics.insert("train_accuracy".to_owned(), 0.83);
    catalog
        .register_model(ModelEntry {
            name: "mortality-clf".into(),
            model_type: "logistic_regression".into(),
            environment: "amalur-native".into(),
            strategy: "factorized".into(),
            hyperparameters: BTreeMap::new(),
            metrics,
            trained_on: vec!["hospital-join".into()],
        })
        .expect("fresh name");

    catalog.save(&path).expect("writable");
    let reloaded = MetadataCatalog::load(&path).expect("readable");

    // Sources.
    let s1_entry = reloaded.source("S1").expect("persisted");
    assert_eq!(s1_entry.num_rows, 4);
    assert_eq!(s1_entry.schema.len(), 4);
    assert_eq!(s1_entry.schema[1].name, "n");
    assert_eq!(s1_entry.schema[1].dtype, "Utf8");

    // DI metadata: the compressed vectors survive exactly.
    let di = reloaded.integration("hospital-join").expect("persisted");
    assert_eq!(di.scenario, "full outer join");
    assert_eq!(di.target_columns, vec!["m", "a", "hr", "o"]);
    assert_eq!(di.mappings[0], vec![0, 1, 2, -1]);
    assert_eq!(di.mappings[1], vec![0, 1, -1, 2]);
    assert_eq!(di.indicators[0], vec![0, 1, 2, 3, -1, -1]);
    assert_eq!(di.indicators[1], vec![-1, -1, -1, 2, 0, 1]);
    assert_eq!(di.redundant_cells, vec![0, 2]);
    assert_eq!(di.tgds.len(), 3);
    assert!(di.tgds[0].contains('∧'));

    // Model + lineage.
    let model = reloaded.model("mortality-clf").expect("persisted");
    assert_eq!(model.metrics["train_accuracy"], 0.83);
    assert_eq!(
        reloaded.models_trained_on("hospital-join"),
        vec!["mortality-clf"]
    );

    // Stability: serializing the reloaded catalog reproduces the file.
    let json1 = catalog.to_json().expect("serializable");
    let json2 = reloaded.to_json().expect("serializable");
    assert_eq!(json1, json2);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_registrations_rejected_after_reload() {
    let catalog = MetadataCatalog::new();
    catalog
        .register_source(SourceEntry::from_table(&amalur::data::hospital::s1(), "er"))
        .expect("fresh");
    let json = catalog.to_json().expect("serializable");
    let reloaded = MetadataCatalog::from_json(&json).expect("parseable");
    assert!(reloaded
        .register_source(SourceEntry::from_table(&amalur::data::hospital::s1(), "er",))
        .is_err());
}
