//! End-to-end pipeline tests: the full Figure 3 flow — register silos,
//! integrate, optimize, execute, persist the catalog — at a few hundred
//! rows scale.

use amalur::prelude::*;

fn build_system(n_er: usize, n_pulm: usize, overlap: usize) -> (Amalur, IntegrationHandle) {
    let (er, pulm) = amalur::data::hospital::scaled_silos(n_er, n_pulm, overlap, 31);
    let mut system = Amalur::new();
    system.register_silo(er, "er-department").expect("fresh");
    system
        .register_silo(pulm, "pulmonary-department")
        .expect("fresh");
    let handle = system
        .integrate(
            "S1",
            "S2",
            ScenarioKind::FullOuterJoin,
            &IntegrationOptions::with_exact_key("n", "n"),
        )
        .expect("hospital silos integrate");
    (system, handle)
}

#[test]
fn pipeline_register_integrate_train_records_everything() {
    let (mut system, handle) = build_system(300, 200, 120);

    // Basic metadata landed in the catalog.
    let s1 = system.catalog().source("S1").expect("registered");
    assert_eq!(s1.num_rows, 300);
    assert_eq!(s1.silo_location, "er-department");
    assert!(s1.schema.iter().any(|f| f.name == "hr"));

    // DI metadata landed too, with the discovered matches.
    let di = system.catalog().integration(&handle.id).expect("recorded");
    assert_eq!(di.target_rows, 300 + 200 - 120);
    assert_eq!(di.mappings.len(), 2);
    assert_eq!(di.indicators[0].len(), di.target_rows);
    assert!(di.redundant_cells[1] > 0);

    // Train under the optimizer's plan.
    let workload = TrainingWorkload {
        epochs: 60,
        x_cols: 1,
    };
    let plan = system.plan(&handle, &workload, &Constraints::default());
    let model = system
        .train_linear_regression(
            &handle,
            0,
            &TrainingConfig {
                epochs: 60,
                learning_rate: 1e-5,
                l2: 0.0,
            },
            plan,
        )
        .expect("training succeeds");
    assert!(model.final_loss.is_finite());

    // Lineage: the model points back to the integration.
    let models = system.catalog().models_trained_on(&handle.id);
    assert_eq!(models, vec![model.name.clone()]);

    // Catalog persists and reloads.
    let json = system.catalog().to_json().expect("serializable");
    let reloaded = MetadataCatalog::from_json(&json).expect("parseable");
    assert_eq!(
        reloaded.model(&model.name).expect("persisted").strategy,
        plan.to_string()
    );
    assert_eq!(
        reloaded.integration(&handle.id).expect("persisted").sources,
        vec!["S1", "S2"]
    );
}

#[test]
fn all_three_plans_produce_consistent_models() {
    let (mut system, handle) = build_system(200, 150, 100);
    let config = TrainingConfig {
        epochs: 40,
        learning_rate: 1e-5,
        l2: 0.0,
    };
    let fact = system
        .train_linear_regression(&handle, 0, &config, ExecutionPlan::Factorize)
        .expect("factorized");
    let mat = system
        .train_linear_regression(&handle, 0, &config, ExecutionPlan::Materialize)
        .expect("materialized");
    let fed = system
        .train_linear_regression(
            &handle,
            0,
            &config,
            ExecutionPlan::Federated(PrivacyMode::Plaintext),
        )
        .expect("federated");

    // Factorized ≡ materialized exactly.
    assert!(fact.coefficients.approx_eq(&mat.coefficients, 1e-9));
    // The federated parameterization splits shared columns across
    // parties (a strictly more expressive model, §V-B's overlapping-
    // columns case), so coefficients and losses are close but not
    // identical.
    assert!(fed.final_loss.is_finite());
    let ratio = fed.final_loss / fact.final_loss.max(1e-12);
    assert!(
        (0.5..=1.5).contains(&ratio),
        "federated loss {} vs central {}",
        fed.final_loss,
        fact.final_loss
    );
    assert_eq!(system.catalog().models_trained_on(&handle.id).len(), 3);
}

#[test]
fn privacy_constraint_forces_federated_plan_end_to_end() {
    let (mut system, handle) = build_system(150, 100, 60);
    let plan = system.plan(
        &handle,
        &TrainingWorkload::default(),
        &Constraints {
            privacy_required: true,
            privacy_mode: Some(PrivacyMode::SecretShared),
        },
    );
    assert_eq!(plan, ExecutionPlan::Federated(PrivacyMode::SecretShared));
    let model = system
        .train_linear_regression(
            &handle,
            0,
            &TrainingConfig {
                epochs: 25,
                learning_rate: 1e-5,
                l2: 0.0,
            },
            plan,
        )
        .expect("secret-shared training completes");
    let entry = system.catalog().model(&model.name).expect("registered");
    assert_eq!(entry.strategy, "federated(secret-shared)");
}

#[test]
fn csv_roundtrip_feeds_the_pipeline() {
    // Silos often arrive as files: CSV → Table → integrate → train.
    let dir = std::env::temp_dir().join("amalur_e2e_csv");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let (er, pulm) = amalur::data::hospital::scaled_silos(120, 80, 50, 37);
    let er_path = dir.join("S1.csv");
    let pulm_path = dir.join("S2.csv");
    amalur::relational::csv::write_csv(&er, &er_path).expect("writable");
    amalur::relational::csv::write_csv(&pulm, &pulm_path).expect("writable");

    let er2 = amalur::relational::csv::read_csv(&er_path).expect("readable");
    let pulm2 = amalur::relational::csv::read_csv(&pulm_path).expect("readable");
    assert_eq!(er2.num_rows(), 120);

    let mut system = Amalur::new();
    system.register_silo(er2, "file://S1.csv").expect("fresh");
    system.register_silo(pulm2, "file://S2.csv").expect("fresh");
    let handle = system
        .integrate(
            "S1",
            "S2",
            ScenarioKind::LeftJoin,
            &IntegrationOptions::with_exact_key("n", "n"),
        )
        .expect("CSV round-tripped tables still integrate");
    assert_eq!(handle.table.target_shape().0, 120);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn integrating_unknown_silos_fails_cleanly() {
    let mut system = Amalur::new();
    system
        .register_silo(amalur::data::hospital::s1(), "er")
        .expect("fresh");
    let err = system
        .integrate(
            "S1",
            "nope",
            ScenarioKind::InnerJoin,
            &IntegrationOptions::with_exact_key("n", "n"),
        )
        .unwrap_err();
    assert!(err.to_string().contains("nope"));
}
