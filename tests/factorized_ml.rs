//! The paper's central ML guarantee (§IV): "factorized learning does not
//! affect model training accuracy". Every model of the Morpheus suite —
//! linear regression, logistic regression, K-Means, GNMF — must produce
//! identical results on a `FactorizedTable` and on its materialization.

use amalur::prelude::*;
use amalur_data::TwoSourceSpec;

/// A moderately sized PK–FK silo configuration (fan-out 4, 40 features).
fn factorized_fixture(seed: u64) -> FactorizedTable {
    let spec = TwoSourceSpec {
        rows_s1: 240,
        cols_s1: 3,
        rows_s2: 60,
        cols_s2: 37,
        shared_cols: 1,
        target_redundancy: true,
        row_coverage: 1.0,
        source_redundancy: false,
        seed,
    };
    let (md, data) = amalur::data::generate_two_source(&spec).expect("valid spec");
    FactorizedTable::new(md, data).expect("consistent")
}

/// Synthetic labels with a planted linear model over the target columns.
fn planted_labels(ft: &FactorizedTable, binary: bool) -> DenseMatrix {
    let t = ft.materialize();
    let (rows, cols) = t.shape();
    let y: Vec<f64> = (0..rows)
        .map(|i| {
            let mut v = 0.0;
            for j in 0..cols {
                // Alternating-sign weights keep the signal bounded.
                let w = if j % 2 == 0 { 0.2 } else { -0.15 };
                v += w * t.get(i, j);
            }
            if binary {
                f64::from(v > 0.0)
            } else {
                v
            }
        })
        .collect();
    DenseMatrix::column_vector(&y)
}

#[test]
fn linear_regression_identical_factorized_and_materialized() {
    let ft = factorized_fixture(1);
    let y = planted_labels(&ft, false);
    let config = LinRegConfig {
        epochs: 100,
        learning_rate: 0.01,
        l2: 0.5,
        tolerance: 0.0,
    };
    let mut fact = LinearRegression::new(config.clone());
    fact.fit(&ft, &y).expect("factorized trains");
    let mut mat = LinearRegression::new(config);
    mat.fit(&ft.materialize(), &y).expect("materialized trains");
    assert!(fact
        .coefficients()
        .expect("fitted")
        .approx_eq(mat.coefficients().expect("fitted"), 1e-9));
    // Loss histories coincide epoch by epoch.
    for (a, b) in fact.loss_history().iter().zip(mat.loss_history()) {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }
}

#[test]
fn closed_form_ridge_uses_the_factorized_gram() {
    let ft = factorized_fixture(2);
    let y = planted_labels(&ft, false);
    let config = LinRegConfig {
        l2: 1.0,
        ..LinRegConfig::default()
    };
    let mut fact = LinearRegression::new(config.clone());
    fact.fit_normal_equations(&ft, &y)
        .expect("factorized solves");
    let mut mat = LinearRegression::new(config);
    mat.fit_normal_equations(&ft.materialize(), &y)
        .expect("materialized solves");
    assert!(fact
        .coefficients()
        .expect("fitted")
        .approx_eq(mat.coefficients().expect("fitted"), 1e-6));
}

#[test]
fn logistic_regression_identical_factorized_and_materialized() {
    let ft = factorized_fixture(3);
    let y = planted_labels(&ft, true);
    let config = LogRegConfig {
        epochs: 80,
        learning_rate: 0.1,
        l2: 0.0,
    };
    let mut fact = LogisticRegression::new(config.clone());
    fact.fit(&ft, &y).expect("factorized trains");
    let mut mat = LogisticRegression::new(config);
    mat.fit(&ft.materialize(), &y).expect("materialized trains");
    assert!(fact
        .coefficients()
        .expect("fitted")
        .approx_eq(mat.coefficients().expect("fitted"), 1e-9));
    let pf = fact.predict_proba(&ft).expect("fitted");
    let pm = mat.predict_proba(&ft.materialize()).expect("fitted");
    for (a, b) in pf.iter().zip(&pm) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn kmeans_identical_factorized_and_materialized() {
    let ft = factorized_fixture(4);
    let config = KMeansConfig {
        k: 3,
        max_iters: 50,
        tolerance: 1e-12,
        seed: 9,
    };
    let mut fact = KMeans::new(config.clone());
    let assign_fact = fact.fit(&ft).expect("factorized clusters");
    let mut mat = KMeans::new(config);
    let assign_mat = mat.fit(&ft.materialize()).expect("materialized clusters");
    assert_eq!(assign_fact, assign_mat);
    assert!((fact.inertia() - mat.inertia()).abs() <= 1e-6 * mat.inertia().max(1.0));
    assert!(fact
        .centroids()
        .expect("fitted")
        .approx_eq(mat.centroids().expect("fitted"), 1e-8));
}

#[test]
fn gnmf_identical_factorized_and_materialized() {
    // GNMF needs a non-negative target: shift the generator output.
    let spec = TwoSourceSpec {
        rows_s1: 60,
        cols_s1: 2,
        rows_s2: 15,
        cols_s2: 6,
        shared_cols: 0,
        target_redundancy: true,
        row_coverage: 1.0,
        source_redundancy: false,
        seed: 5,
    };
    let (md, mut data) = amalur::data::generate_two_source(&spec).expect("valid spec");
    for d in &mut data {
        d.map_inplace(|v| v.abs());
    }
    let ft = FactorizedTable::new(md, data).expect("consistent");
    let config = GnmfConfig {
        rank: 2,
        iters: 60,
        seed: 11,
    };
    let mut fact = Gnmf::new(config.clone());
    fact.fit(&ft).expect("factorized factorizes");
    let mut mat = Gnmf::new(config);
    mat.fit(&ft.materialize()).expect("materialized factorizes");
    assert!(fact
        .w()
        .expect("fitted")
        .approx_eq(mat.w().expect("fitted"), 1e-6));
    assert!(fact
        .h()
        .expect("fitted")
        .approx_eq(mat.h().expect("fitted"), 1e-6));
    for (a, b) in fact.loss_history().iter().zip(mat.loss_history()) {
        assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0));
    }
}

#[test]
fn models_work_across_all_four_redundancy_quadrants() {
    // The Table III grid: {source redundancy} × {target redundancy}.
    for (source_red, target_red) in [(false, false), (false, true), (true, false), (true, true)] {
        let spec = TwoSourceSpec {
            rows_s1: 150,
            cols_s1: 2,
            rows_s2: 50,
            cols_s2: 10,
            shared_cols: 0,
            target_redundancy: target_red,
            row_coverage: 1.0,
            source_redundancy: source_red,
            seed: 77,
        };
        let (md, data) = amalur::data::generate_two_source(&spec).expect("valid spec");
        let ft = FactorizedTable::new(md, data).expect("consistent");
        let y = planted_labels(&ft, false);
        let config = LinRegConfig {
            epochs: 30,
            learning_rate: 0.01,
            l2: 0.0,
            tolerance: 0.0,
        };
        let mut fact = LinearRegression::new(config.clone());
        fact.fit(&ft, &y).expect("factorized trains");
        let mut mat = LinearRegression::new(config);
        mat.fit(&ft.materialize(), &y).expect("materialized trains");
        assert!(
            fact.coefficients()
                .expect("fitted")
                .approx_eq(mat.coefficients().expect("fitted"), 1e-9),
            "quadrant source_red={source_red} target_red={target_red}"
        );
    }
}
