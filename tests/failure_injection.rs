//! Failure injection: the system must reject malformed inputs with
//! proper errors — never panic, never produce silently-wrong results.

use amalur::integration::{integrate_pair, Tgd};
use amalur::prelude::*;
use amalur_data::TwoSourceSpec;

#[test]
fn malformed_tgds_are_rejected() {
    for bad in [
        "",
        "S1(a)",        // no head
        "-> T(a)",      // no body
        "S1 -> T(a)",   // body atom without parens
        "S1() -> T(a)", // empty variable list
        "S1(a) -> T(a", // unbalanced parens
        "(a) -> T(a)",  // missing relation name
    ] {
        assert!(Tgd::parse(bad).is_err(), "accepted malformed tgd: {bad:?}");
    }
}

#[test]
fn integration_with_missing_keys_or_no_matches() {
    let s1 = amalur::data::hospital::s1();
    let s2 = amalur::data::hospital::s2();
    // Missing key columns.
    for (l, r) in [("ghost", "n"), ("n", "ghost")] {
        let opts = IntegrationOptions::with_key(l, r);
        assert!(integrate_pair(&s1, &s2, ScenarioKind::InnerJoin, &opts).is_err());
    }
    // Disjoint schemas in a union: no shared features → clean error.
    let a = TableBuilder::new("A", &[("id", DataType::Int64), ("x", DataType::Float64)])
        .expect("schema")
        .row(vec![1.into(), 1.0.into()])
        .expect("row")
        .build();
    let b = TableBuilder::new("B", &[("id", DataType::Int64), ("z", DataType::Float64)])
        .expect("schema")
        .row(vec![2.into(), 2.0.into()])
        .expect("row")
        .build();
    let opts = IntegrationOptions::with_exact_key("id", "id");
    assert!(integrate_pair(&a, &b, ScenarioKind::Union, &opts).is_err());
}

#[test]
fn empty_tables_flow_through_without_panicking() {
    let empty1 = TableBuilder::new(
        "S1",
        &[
            ("m", DataType::Int64),
            ("n", DataType::Utf8),
            ("a", DataType::Float64),
        ],
    )
    .expect("schema")
    .build();
    let empty2 = TableBuilder::new(
        "S2",
        &[
            ("m", DataType::Int64),
            ("n", DataType::Utf8),
            ("o", DataType::Float64),
        ],
    )
    .expect("schema")
    .build();
    let opts = IntegrationOptions::with_exact_key("n", "n");
    let result = integrate_pair(&empty1, &empty2, ScenarioKind::FullOuterJoin, &opts)
        .expect("empty tables are valid silos");
    assert_eq!(result.metadata.target_rows, 0);
    let ft = FactorizedTable::from_integration(result).expect("consistent");
    assert_eq!(ft.materialize().shape(), (0, 3));
    // Ops on the empty table do not panic.
    let x = DenseMatrix::ones(3, 2);
    assert_eq!(
        ft.lmm(&x, Strategy::Compressed).expect("valid").shape(),
        (0, 2)
    );
    assert_eq!(ft.gram().shape(), (3, 3));
}

#[test]
fn nan_labels_are_rejected_by_training() {
    let spec = TwoSourceSpec {
        rows_s1: 20,
        cols_s1: 2,
        rows_s2: 5,
        cols_s2: 3,
        ..TwoSourceSpec::default()
    };
    let (md, data) = amalur::data::generate_two_source(&spec).expect("valid");
    let ft = FactorizedTable::new(md, data).expect("consistent");
    let mut y = DenseMatrix::zeros(20, 1);
    y.set(3, 0, f64::NAN);
    let mut model = LinearRegression::new(LinRegConfig::default());
    assert!(model.fit(&ft, &y).is_err());
    let mut logreg = LogisticRegression::new(LogRegConfig::default());
    assert!(logreg.fit(&ft, &y).is_err());
}

#[test]
fn singular_normal_equations_error_instead_of_garbage() {
    // Two identical columns → singular Gram matrix.
    let x =
        DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).expect("static");
    let y = DenseMatrix::column_vector(&[1.0, 2.0, 3.0]);
    let mut model = LinearRegression::new(LinRegConfig::default());
    assert!(model.fit_normal_equations(&x, &y).is_err());
    // Ridge regularization rescues it.
    let mut ridge = LinearRegression::new(LinRegConfig {
        l2: 1.0,
        ..LinRegConfig::default()
    });
    assert!(ridge.fit_normal_equations(&x, &y).is_ok());
}

#[test]
fn mismatched_operands_error_at_every_layer() {
    let spec = TwoSourceSpec {
        rows_s1: 10,
        cols_s1: 2,
        rows_s2: 5,
        cols_s2: 3,
        ..TwoSourceSpec::default()
    };
    let (md, data) = amalur::data::generate_two_source(&spec).expect("valid");
    let ft = FactorizedTable::new(md.clone(), data.clone()).expect("consistent");
    let (rows, cols) = ft.target_shape();
    // Wrong operand shapes.
    assert!(ft
        .lmm(&DenseMatrix::zeros(cols + 1, 1), Strategy::Compressed)
        .is_err());
    assert!(ft
        .lmm_transpose(&DenseMatrix::zeros(rows + 1, 1), Strategy::Compressed)
        .is_err());
    // Wrong data shapes at construction.
    let mut bad = data;
    bad[0] = DenseMatrix::zeros(9, 2);
    assert!(FactorizedTable::new(md, bad).is_err());
}

#[test]
fn corrupted_catalog_json_is_rejected() {
    for bad in ["", "{", "[1, 2, 3]", "{\"sources\": 42}"] {
        assert!(
            MetadataCatalog::from_json(bad).is_err(),
            "accepted corrupt catalog: {bad:?}"
        );
    }
}

#[test]
fn csv_malformations_are_reported() {
    use amalur::relational::csv::read_csv_str;
    assert!(read_csv_str("t", "").is_err());
    assert!(read_csv_str("t", "a,b\n1\n").is_err()); // ragged
    assert!(read_csv_str("t", "a\n\"unterminated\n").is_err());
}

#[test]
fn label_column_out_of_range_errors() {
    let spec = TwoSourceSpec {
        rows_s1: 10,
        cols_s1: 2,
        rows_s2: 5,
        cols_s2: 3,
        ..TwoSourceSpec::default()
    };
    let (md, data) = amalur::data::generate_two_source(&spec).expect("valid");
    let ft = FactorizedTable::new(md, data).expect("consistent");
    assert!(ft.split_label(99).is_err());
    assert!(ft.materialize_column(99).is_err());
    assert!(ft.drop_target_column(99).is_err());
}

#[test]
fn federated_with_inconsistent_parties_errors() {
    use amalur::federated::{train_vfl, VflConfig};
    let a = DenseMatrix::zeros(10, 2);
    let b = DenseMatrix::zeros(7, 2); // wrong row count
    let y = DenseMatrix::zeros(10, 1);
    assert!(train_vfl(&[a.clone(), b], &y, &VflConfig::default()).is_err());
    // Wrong label length.
    let c = DenseMatrix::zeros(10, 2);
    let short_y = DenseMatrix::zeros(9, 1);
    assert!(train_vfl(&[a, c], &short_y, &VflConfig::default()).is_err());
}
