//! Federated ≡ centralized, end to end through the DI layer: party
//! feature spaces come from the mapping/indicator matrices (§V-A,
//! `X_A = I₁D₁M₁ᵀ`), training runs the threaded orchestrator protocol,
//! and the result must coincide with centralized gradient descent.

use amalur::federated::{party_views, train_fedavg, train_vfl, HflConfig, VflConfig};
use amalur::integration::integrate_union;
use amalur::prelude::*;
use amalur_data::TwoSourceSpec;

/// VFL over a DI-aligned two-silo configuration with overlapping rows.
fn vfl_fixture() -> (Vec<DenseMatrix>, DenseMatrix, DenseMatrix) {
    vfl_fixture_sized(120)
}

fn vfl_fixture_sized(rows: usize) -> (Vec<DenseMatrix>, DenseMatrix, DenseMatrix) {
    let spec = TwoSourceSpec {
        rows_s1: rows,
        cols_s1: 3,
        rows_s2: (rows / 3).max(1),
        cols_s2: 5,
        shared_cols: 0,
        target_redundancy: true,
        row_coverage: 1.0,
        source_redundancy: false,
        seed: 21,
    };
    let (md, data) = amalur::data::generate_two_source(&spec).expect("valid spec");
    let ft = FactorizedTable::new(md, data).expect("consistent");
    let views = party_views(&ft).expect("aligned views");
    let xs: Vec<DenseMatrix> = views.into_iter().map(|v| v.features).collect();
    let concat = xs
        .iter()
        .skip(1)
        .fold(xs[0].clone(), |acc, x| acc.hstack(x).expect("aligned rows"));
    // Planted linear labels over the concatenated features.
    let theta: Vec<f64> = (0..concat.cols())
        .map(|j| if j % 2 == 0 { 0.8 } else { -0.6 })
        .collect();
    let y = DenseMatrix::column_vector(&concat.matvec(&theta).expect("shapes agree"));
    (xs, y, concat)
}

fn centralized_gd(x: &DenseMatrix, y: &DenseMatrix, epochs: usize, lr: f64) -> DenseMatrix {
    let n = x.rows() as f64;
    let mut theta = DenseMatrix::zeros(x.cols(), 1);
    for _ in 0..epochs {
        let resid = x.matmul(&theta).expect("shapes").sub(y).expect("shapes");
        let grad = x.transpose_matmul(&resid).expect("shapes");
        theta.axpy_assign(-lr / n, &grad).expect("shapes");
    }
    theta
}

#[test]
fn di_aligned_vfl_equals_centralized_plaintext() {
    let (xs, y, concat) = vfl_fixture();
    let epochs = 50;
    let lr = 0.05;
    let result = train_vfl(
        &xs,
        &y,
        &VflConfig {
            epochs,
            learning_rate: lr,
            l2: 0.0,
            privacy: PrivacyMode::Plaintext,
            seed: 1,
            ..VflConfig::default()
        },
    )
    .expect("protocol completes");
    let reference = centralized_gd(&concat, &y, epochs, lr);
    let stacked = result
        .coefficients
        .iter()
        .skip(1)
        .fold(result.coefficients[0].clone(), |acc, c| {
            acc.vstack(c).expect("column vectors")
        });
    assert!(
        stacked.approx_eq(&reference, 1e-9),
        "max diff {:?}",
        stacked.max_abs_diff(&reference)
    );
}

#[test]
fn secret_shared_vfl_has_bounded_quantization_error() {
    let (xs, y, concat) = vfl_fixture();
    let epochs = 25;
    let lr = 0.05;
    let result = train_vfl(
        &xs,
        &y,
        &VflConfig {
            epochs,
            learning_rate: lr,
            l2: 0.0,
            privacy: PrivacyMode::SecretShared,
            seed: 2,
            ..VflConfig::default()
        },
    )
    .expect("protocol completes");
    let reference = centralized_gd(&concat, &y, epochs, lr);
    let stacked = result
        .coefficients
        .iter()
        .skip(1)
        .fold(result.coefficients[0].clone(), |acc, c| {
            acc.vstack(c).expect("column vectors")
        });
    // Fixed-point scale 2⁻²⁰ per aggregation, accumulated over epochs.
    assert!(
        stacked.approx_eq(&reference, 1e-3),
        "max diff {:?}",
        stacked.max_abs_diff(&reference)
    );
    // The privacy did cost something measurable.
    assert!(result.comm.crypto_time > std::time::Duration::ZERO);
}

#[test]
fn paillier_vfl_matches_and_reports_encryption_overhead() {
    // Small: debug-mode Paillier costs ~10 ms per encryption.
    let (xs, y, concat) = vfl_fixture_sized(24);
    let epochs = 3;
    let lr = 0.05;
    let secure = train_vfl(
        &xs,
        &y,
        &VflConfig {
            epochs,
            learning_rate: lr,
            l2: 0.0,
            privacy: PrivacyMode::Paillier { key_bits: 128 },
            seed: 3,
            ..VflConfig::default()
        },
    )
    .expect("protocol completes");
    let reference = centralized_gd(&concat, &y, epochs, lr);
    let stacked = secure
        .coefficients
        .iter()
        .skip(1)
        .fold(secure.coefficients[0].clone(), |acc, c| {
            acc.vstack(c).expect("column vectors")
        });
    assert!(
        stacked.approx_eq(&reference, 1e-3),
        "max diff {:?}",
        stacked.max_abs_diff(&reference)
    );
    // §V-B: encryption overhead is real and observable.
    let plain = train_vfl(
        &xs,
        &y,
        &VflConfig {
            epochs,
            learning_rate: lr,
            l2: 0.0,
            privacy: PrivacyMode::Plaintext,
            seed: 3,
            ..VflConfig::default()
        },
    )
    .expect("protocol completes");
    assert!(secure.comm.crypto_time > plain.comm.crypto_time);
    assert!(secure.comm.total_bytes() > plain.comm.total_bytes());
}

#[test]
fn hfl_over_di_union_equals_centralized() {
    // Build the HFL parties through the DI union planner — the Example 4
    // path — then check FedAvg (1 local epoch) equals centralized GD.
    let phones = amalur::data::workloads::keyboard_silos(4, 50, 33);
    let refs: Vec<&Table> = phones.iter().collect();
    let union = integrate_union(&refs, "uid", 0.0).expect("shared schema");
    assert!(union
        .metadata
        .sources
        .iter()
        .all(|s| s.redundancy.is_all_ones()));

    let feature_cols = ["dwell_ms", "flight_ms", "pressure", "x", "y"];
    let parties: Vec<PartySamples> = phones
        .iter()
        .map(|t| PartySamples {
            name: t.name().to_owned(),
            x: t.to_matrix(&feature_cols, 0.0).expect("numeric"),
            y: t.to_matrix(&["next_flight_ms"], 0.0).expect("target"),
        })
        .collect();
    let rounds = 20;
    let lr = 1e-6; // raw (unstandardized) features need a tiny rate
    let result = train_fedavg(
        &parties,
        &HflConfig {
            rounds,
            local_epochs: 1,
            learning_rate: lr,
            dp: None,
            seed: 4,
            ..HflConfig::default()
        },
    )
    .expect("protocol completes");

    // Centralized on the stacked union.
    let all_x = parties.iter().skip(1).fold(parties[0].x.clone(), |acc, p| {
        acc.vstack(&p.x).expect("same width")
    });
    let all_y = parties.iter().skip(1).fold(parties[0].y.clone(), |acc, p| {
        acc.vstack(&p.y).expect("one column")
    });
    let reference = centralized_gd(&all_x, &all_y, rounds, lr);
    assert!(
        result.global.approx_eq(&reference, 1e-9),
        "max diff {:?}",
        result.global.max_abs_diff(&reference)
    );
}
