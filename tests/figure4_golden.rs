//! Golden test: every value of Figure 4 (and the target table of
//! Figure 2d), reproduced through the public API from the raw Figure 2
//! tables.

use amalur::prelude::*;
use amalur_integration::integrate_pair;
use amalur_matrix::NO_MATCH;

fn running_example() -> FactorizedTable {
    let result = integrate_pair(
        &amalur::data::hospital::s1(),
        &amalur::data::hospital::s2(),
        ScenarioKind::FullOuterJoin,
        &IntegrationOptions::with_key("n", "n"),
    )
    .expect("the running example integrates");
    FactorizedTable::from_integration(result).expect("consistent metadata")
}

#[test]
fn target_schema_is_m_a_hr_o() {
    let ft = running_example();
    assert_eq!(
        ft.metadata().target_columns,
        vec!["m", "a", "hr", "o"],
        "T(m, a, hr, o) — the mediated schema of the paper"
    );
    assert_eq!(ft.target_shape(), (6, 4));
}

#[test]
fn figure4a_mapping_matrices() {
    let ft = running_example();
    let s1 = &ft.metadata().sources[0];
    let s2 = &ft.metadata().sources[1];
    // Compressed forms.
    assert_eq!(s1.mapping.compressed(), &[0, 1, 2, NO_MATCH]);
    assert_eq!(s2.mapping.compressed(), &[0, 1, NO_MATCH, 2]);
    // Full M1 (4×3) as printed in the figure.
    let m1 = s1.mapping.to_dense();
    assert_eq!(m1.row(0), &[1.0, 0.0, 0.0]);
    assert_eq!(m1.row(1), &[0.0, 1.0, 0.0]);
    assert_eq!(m1.row(2), &[0.0, 0.0, 1.0]);
    assert_eq!(m1.row(3), &[0.0, 0.0, 0.0]);
    // Full M2 (4×3).
    let m2 = s2.mapping.to_dense();
    assert_eq!(m2.row(0), &[1.0, 0.0, 0.0]);
    assert_eq!(m2.row(1), &[0.0, 1.0, 0.0]);
    assert_eq!(m2.row(2), &[0.0, 0.0, 0.0]);
    assert_eq!(m2.row(3), &[0.0, 0.0, 1.0]);
}

#[test]
fn figure4b_indicator_matrices_and_data() {
    let ft = running_example();
    let s1 = &ft.metadata().sources[0];
    let s2 = &ft.metadata().sources[1];
    // Target rows: Jack, Sam, Ruby, Jane, Rose, Castiel.
    assert_eq!(s1.indicator.compressed(), &[0, 1, 2, 3, NO_MATCH, NO_MATCH]);
    assert_eq!(
        s2.indicator.compressed(),
        &[NO_MATCH, NO_MATCH, NO_MATCH, 2, 0, 1]
    );
    // D1 = S1's (m, a, hr); D2 = S2's (m, a, o) — Figure 4b.
    let d1 = &ft.source_data()[0];
    assert_eq!(d1.row(0), &[0.0, 20.0, 60.0]);
    assert_eq!(d1.row(1), &[1.0, 35.0, 58.0]);
    assert_eq!(d1.row(2), &[0.0, 22.0, 65.0]);
    assert_eq!(d1.row(3), &[1.0, 37.0, 70.0]);
    let d2 = &ft.source_data()[1];
    assert_eq!(d2.row(0), &[1.0, 45.0, 95.0]);
    assert_eq!(d2.row(1), &[0.0, 20.0, 97.0]);
    assert_eq!(d2.row(2), &[1.0, 37.0, 92.0]);
}

#[test]
fn figure4c_redundancy_matrix() {
    let ft = running_example();
    let r2 = &ft.metadata().sources[1].redundancy;
    // Zeros exactly at Jane's (m, a) cells: row 3, cols 0 and 1.
    let dense = r2.to_dense();
    for i in 0..6 {
        for j in 0..4 {
            let expected = if i == 3 && (j == 0 || j == 1) {
                0.0
            } else {
                1.0
            };
            assert_eq!(dense.get(i, j), expected, "R2[{i},{j}]");
        }
    }
    // The base table's redundancy matrix is all ones.
    assert!(ft.metadata().sources[0].redundancy.is_all_ones());
}

#[test]
fn figure2d_materialized_target() {
    let ft = running_example();
    let t = ft.materialize();
    let expected = DenseMatrix::from_rows(&[
        vec![0.0, 20.0, 60.0, 0.0],  // Jack
        vec![1.0, 35.0, 58.0, 0.0],  // Sam
        vec![0.0, 22.0, 65.0, 0.0],  // Ruby
        vec![1.0, 37.0, 70.0, 92.0], // Jane (merged entity)
        vec![1.0, 45.0, 0.0, 95.0],  // Rose
        vec![0.0, 20.0, 0.0, 97.0],  // Castiel
    ])
    .expect("static expectation");
    assert!(t.approx_eq(&expected, 1e-12));
}

#[test]
fn figure4c_t1_plus_t2_double_counts_without_redundancy_mask() {
    // The paper's point: T1 + T2 ≠ T because Jane's (m, a) repeat.
    let ft = running_example();
    let t1 = ft.intermediate(0).expect("in range");
    let t2 = ft.intermediate(1).expect("in range");
    let naive = t1.add(&t2).expect("same shape");
    let t = ft.materialize();
    assert!(!naive.approx_eq(&t, 1e-9));
    // Specifically Jane's row: m doubles to 2, a doubles to 74.
    assert_eq!(naive.get(3, 0), 2.0);
    assert_eq!(naive.get(3, 1), 74.0);
    assert_eq!(t.get(3, 0), 1.0);
    assert_eq!(t.get(3, 1), 37.0);
}

#[test]
fn figure4c_lmm_rewrite_equals_materialized_product() {
    let ft = running_example();
    let t = ft.materialize();
    let x = DenseMatrix::from_rows(&[
        vec![6.0, 5.0],
        vec![3.0, 2.0],
        vec![2.0, 2.0],
        vec![4.0, 2.0],
    ])
    .expect("static operand");
    let reference = t.matmul(&x).expect("shapes agree");
    for strategy in [Strategy::Compressed, Strategy::Sparse] {
        let fact = ft.lmm(&x, strategy).expect("shapes agree");
        assert!(
            fact.approx_eq(&reference, 1e-9),
            "strategy {strategy} diverged from T·X"
        );
    }
    // Morpheus' rule (1) refuses: the sources overlap.
    assert!(ft.lmm(&x, Strategy::Morpheus).is_err());
}

#[test]
fn tgds_of_table1_example1() {
    let result = integrate_pair(
        &amalur::data::hospital::s1(),
        &amalur::data::hospital::s2(),
        ScenarioKind::FullOuterJoin,
        &IntegrationOptions::with_key("n", "n"),
    )
    .expect("integrates");
    assert_eq!(result.tgds.len(), 3);
    // m1 is the full join tgd; m2/m3 have existential variables o / hr.
    assert!(result.tgds[0].is_full());
    assert_eq!(
        result.tgds[1].existential_vars(),
        ["o"].into_iter().collect()
    );
    assert_eq!(
        result.tgds[2].existential_vars(),
        ["hr"].into_iter().collect()
    );
    // The join variables of m1 include the entity key and shared columns.
    let join_vars = result.tgds[0].join_vars();
    assert!(join_vars.contains("n"));
    assert!(join_vars.contains("m"));
    assert!(join_vars.contains("a"));
}
