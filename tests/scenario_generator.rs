//! Workspace-level smoke of the property-based scenario gate: the
//! regression corpus and a fresh sampled slice must hold the §IV
//! equivalence guarantee end to end (dev-profile companion to the
//! release-profile `scenario_sweep` bin).

use amalur_gen::sample::SizeClass;
use amalur_gen::{check_and_shrink, sample_specs, Corpus, ALL_WORKLOADS};

#[test]
fn regression_corpus_holds_at_workspace_level() {
    let violations = Corpus::builtin().replay(&ALL_WORKLOADS);
    assert!(
        violations.is_empty(),
        "{}",
        violations
            .iter()
            .map(|(e, m)| format!("[{}] {m}", e.note))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fresh_scenarios_hold_at_workspace_level() {
    // A different sweep seed than the crate-level test and the bench
    // bin, so the three gates explore three slices of the grammar.
    for (i, spec) in sample_specs(0x5EED, 12, SizeClass::Small)
        .iter()
        .enumerate()
    {
        check_and_shrink(spec, &ALL_WORKLOADS)
            .unwrap_or_else(|message| panic!("scenario #{i}: {message}"));
    }
}
