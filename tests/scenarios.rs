//! Table I scenarios: for every dataset relationship (full outer join,
//! inner join, left join, union) the factorized pipeline must agree with
//! the traditional relational materialization of Figure 2 — and with
//! itself across rewrite strategies.

use amalur::prelude::*;
use amalur_integration::{integrate_pair, materialize_relationally};
use rand::SeedableRng;

const SCENARIOS: [ScenarioKind; 4] = [
    ScenarioKind::FullOuterJoin,
    ScenarioKind::InnerJoin,
    ScenarioKind::LeftJoin,
    ScenarioKind::Union,
];

fn opts() -> IntegrationOptions {
    IntegrationOptions::with_exact_key("n", "n")
}

/// Matrix assembly must equal the relational (join-based) materialization
/// for every scenario — matrices and joins are two routes to the same T.
#[test]
fn matrix_assembly_equals_relational_materialization() {
    let s1 = amalur::data::hospital::s1();
    let s2 = amalur::data::hospital::s2();
    for kind in SCENARIOS {
        let result = integrate_pair(&s1, &s2, kind, &opts()).expect("integrates");
        let target_columns = result.metadata.target_columns.clone();
        let ft = FactorizedTable::from_integration(result).expect("consistent");
        let via_matrices = ft.materialize();

        let via_joins = materialize_relationally(&s1, &s2, kind, &opts(), &target_columns)
            .expect("relational path");
        let refs: Vec<&str> = target_columns.iter().map(String::as_str).collect();
        let via_joins_matrix = via_joins.to_matrix(&refs, 0.0).expect("numeric target");

        assert_eq!(
            via_matrices.shape(),
            via_joins_matrix.shape(),
            "{kind}: shape mismatch"
        );
        assert!(
            via_matrices.approx_eq(&via_joins_matrix, 1e-9),
            "{kind}: content mismatch\nmatrices: {via_matrices:?}\njoins: {via_joins_matrix:?}"
        );
    }
}

/// Factorized LMM / transpose-LMM agree with the materialized product in
/// every scenario and for every applicable strategy.
#[test]
fn factorized_ops_agree_across_scenarios() {
    let s1 = amalur::data::hospital::s1();
    let s2 = amalur::data::hospital::s2();
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    for kind in SCENARIOS {
        let result = integrate_pair(&s1, &s2, kind, &opts()).expect("integrates");
        let ft = FactorizedTable::from_integration(result).expect("consistent");
        let t = ft.materialize();
        let (rows, cols) = ft.target_shape();
        let x = DenseMatrix::random_uniform(cols, 3, -1.0, 1.0, &mut rng);
        let y = DenseMatrix::random_uniform(rows, 2, -1.0, 1.0, &mut rng);

        let ref_lmm = t.matmul(&x).expect("shapes");
        let ref_tlmm = t.transpose().matmul(&y).expect("shapes");
        for strategy in [Strategy::Compressed, Strategy::Sparse] {
            assert!(
                ft.lmm(&x, strategy)
                    .expect("shapes")
                    .approx_eq(&ref_lmm, 1e-9),
                "{kind}/{strategy}: LMM mismatch"
            );
            assert!(
                ft.lmm_transpose(&y, strategy)
                    .expect("shapes")
                    .approx_eq(&ref_tlmm, 1e-9),
                "{kind}/{strategy}: TᵀX mismatch"
            );
        }
        assert!(
            ft.gram().approx_eq(&t.gram(), 1e-9),
            "{kind}: gram mismatch"
        );
        for (a, b) in ft.col_sums().iter().zip(t.col_sums()) {
            assert!((a - b).abs() < 1e-9, "{kind}: col_sums mismatch");
        }
    }
}

/// Expected target shapes per scenario on the running example.
#[test]
fn scenario_shapes_match_the_paper() {
    let s1 = amalur::data::hospital::s1();
    let s2 = amalur::data::hospital::s2();
    let expect = [
        (ScenarioKind::FullOuterJoin, 6, 4), // all six patients
        (ScenarioKind::InnerJoin, 1, 4),     // only Jane
        (ScenarioKind::LeftJoin, 4, 4),      // S1's four patients
        (ScenarioKind::Union, 7, 2),         // stacked rows over (m, a)
    ];
    for (kind, rows, cols) in expect {
        let result = integrate_pair(&s1, &s2, kind, &opts()).expect("integrates");
        assert_eq!(
            (result.metadata.target_rows, result.metadata.target_cols()),
            (rows, cols),
            "{kind}"
        );
    }
}

/// Per Table I: which tgd sets define which scenario.
#[test]
fn tgd_sets_follow_table1() {
    let s1 = amalur::data::hospital::s1();
    let s2 = amalur::data::hospital::s2();
    let expect = [
        (ScenarioKind::FullOuterJoin, 3), // m1, m2, m3
        (ScenarioKind::InnerJoin, 1),     // m1
        (ScenarioKind::LeftJoin, 2),      // m1, m2
        (ScenarioKind::Union, 2),         // m2, m3
    ];
    for (kind, n_tgds) in expect {
        let result = integrate_pair(&s1, &s2, kind, &opts()).expect("integrates");
        assert_eq!(result.tgds.len(), n_tgds, "{kind}");
    }
    // Union tgds have single-atom bodies (no join).
    let union = integrate_pair(&s1, &s2, ScenarioKind::Union, &opts()).expect("integrates");
    assert!(union.tgds.iter().all(|t| t.body.len() == 1));
}

/// Example IV.1's pruning logic: an inner join of 1:1-matched sources
/// produces a target with no more redundancy than the sources — the
/// easy "materialize" case, detectable from the tgds (full tgd) and the
/// metadata (no fan-out).
#[test]
fn example_iv1_inner_join_has_no_target_redundancy() {
    let s1 = amalur::data::hospital::s1();
    let s2 = amalur::data::hospital::s2();
    let result = integrate_pair(&s1, &s2, ScenarioKind::InnerJoin, &opts()).expect("integrates");
    assert!(result.tgds[0].is_full());
    let features = amalur::cost::CostFeatures::from_metadata(&result.metadata);
    assert!(!features.has_target_redundancy());
    assert!(features.expansion_ratio() < 1.0);
}

/// ML over each scenario: training factorized equals training
/// materialized regardless of the dataset relationship.
#[test]
fn training_agrees_across_scenarios() {
    let (er, pulm) = amalur::data::hospital::scaled_silos(400, 300, 200, 23);
    for kind in SCENARIOS {
        let result = integrate_pair(&er, &pulm, kind, &opts()).expect("integrates");
        let ft = FactorizedTable::from_integration(result).expect("consistent");
        let (features, y) = ft.split_label(0).expect("label col 0 = m");
        let config = LinRegConfig {
            epochs: 40,
            learning_rate: 1e-5,
            l2: 0.1,
            tolerance: 0.0,
        };
        let mut fact = LinearRegression::new(config.clone());
        fact.fit(&features, &y).expect("factorized trains");
        let mut mat = LinearRegression::new(config);
        mat.fit(&features.materialize(), &y)
            .expect("materialized trains");
        assert!(
            fact.coefficients()
                .expect("fitted")
                .approx_eq(mat.coefficients().expect("fitted"), 1e-9),
            "{kind}: coefficients diverge"
        );
    }
}
