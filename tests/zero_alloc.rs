//! Steady-state allocation behaviour of the `Workspace`-backed training
//! loops (the zero-allocation pipeline contract of the kernel layer).
//!
//! `Workspace::fresh_allocations` counts pool misses — i.e. actual heap
//! allocations performed for matrix-sized intermediates. A warm loop
//! must not miss: after one full fit has populated the pool, running
//! further fits (and therefore arbitrarily many more epochs) through the
//! same workspace allocates nothing new.

use amalur::prelude::*;
use amalur_data::TwoSourceSpec;
use amalur_matrix::Workspace;

fn factorized_fixture(seed: u64) -> FactorizedTable {
    let spec = TwoSourceSpec {
        rows_s1: 300,
        cols_s1: 4,
        rows_s2: 75,
        cols_s2: 20,
        shared_cols: 1,
        target_redundancy: true,
        row_coverage: 1.0,
        source_redundancy: false,
        seed,
    };
    let (md, data) = amalur::data::generate_two_source(&spec).expect("valid spec");
    FactorizedTable::new(md, data).expect("consistent")
}

fn labels(ft: &FactorizedTable, binary: bool) -> DenseMatrix {
    let t = ft.materialize();
    let y: Vec<f64> = (0..t.rows())
        .map(|i| {
            let v: f64 = t.row(i).iter().sum::<f64>() * 0.1;
            if binary {
                f64::from(v > 0.0)
            } else {
                v
            }
        })
        .collect();
    DenseMatrix::column_vector(&y)
}

/// Runs `fit` twice through one workspace and asserts the second run —
/// identical shapes, warm pool — performs zero fresh allocations.
fn assert_steady_state(mut fit: impl FnMut(&mut Workspace)) {
    let mut ws = Workspace::new();
    fit(&mut ws);
    let warm = ws.fresh_allocations();
    assert!(warm > 0, "warm-up run must populate the pool");
    fit(&mut ws);
    fit(&mut ws);
    assert_eq!(
        ws.fresh_allocations(),
        warm,
        "steady-state fits must not allocate beyond the warm-up"
    );
}

#[test]
fn linreg_factorized_epochs_are_allocation_free() {
    let ft = factorized_fixture(7);
    let y = labels(&ft, false);
    let config = LinRegConfig {
        epochs: 25,
        learning_rate: 0.01,
        ..LinRegConfig::default()
    };
    assert_steady_state(|ws| {
        let mut model = LinearRegression::new(config.clone());
        model.fit_with_workspace(&ft, &y, ws).expect("trains");
        assert_eq!(model.loss_history().len(), 25);
    });
}

#[test]
fn linreg_materialized_epochs_are_allocation_free() {
    let ft = factorized_fixture(8);
    let t = ft.materialize();
    let y = labels(&ft, false);
    let config = LinRegConfig {
        epochs: 25,
        learning_rate: 0.01,
        ..LinRegConfig::default()
    };
    assert_steady_state(|ws| {
        let mut model = LinearRegression::new(config.clone());
        model.fit_with_workspace(&t, &y, ws).expect("trains");
    });
}

#[test]
fn logreg_factorized_epochs_are_allocation_free() {
    let ft = factorized_fixture(9);
    let y = labels(&ft, true);
    let config = LogRegConfig {
        epochs: 20,
        learning_rate: 0.1,
        ..LogRegConfig::default()
    };
    assert_steady_state(|ws| {
        let mut model = LogisticRegression::new(config.clone());
        model.fit_with_workspace(&ft, &y, ws).expect("trains");
    });
}

#[test]
fn kmeans_factorized_iterations_are_allocation_free() {
    let ft = factorized_fixture(10);
    let config = KMeansConfig {
        k: 3,
        max_iters: 15,
        tolerance: 0.0, // run all iterations so both fits do equal work
        seed: 4,
    };
    assert_steady_state(|ws| {
        let mut model = KMeans::new(config.clone());
        model.fit_with_workspace(&ft, ws).expect("clusters");
    });
}

#[test]
fn gnmf_factorized_iterations_are_allocation_free() {
    // GNMF requires non-negative data; shift the fixture up.
    let ft = factorized_fixture(11);
    let t = ft.materialize().map(|v| v.abs() + 0.1);
    let config = GnmfConfig {
        rank: 3,
        iters: 10,
        seed: 5,
    };
    assert_steady_state(|ws| {
        let mut model = Gnmf::new(config.clone());
        model.fit_with_workspace(&t, ws).expect("factorizes");
    });
}

#[test]
fn recording_metrics_does_not_break_the_steady_state() {
    // The obs overhead budget: with the kernel-layer counters mounted,
    // a span timing every fit, and explicit histogram/counter recording
    // in the loop, the steady state must stay allocation-free — the
    // whole point of the lock-free record paths.
    use amalur_obs::{span, Counter, Histogram, MetricsRegistry, VirtualClock};

    let reg = MetricsRegistry::new();
    amalur_matrix::mount_metrics(&reg);
    amalur_factorize::mount_metrics(&reg);
    static FITS: Counter = Counter::new();
    static FIT_US: Histogram = Histogram::new();
    reg.mount_counter("test.fits", &FITS);
    reg.mount_histogram("test.fit_us", &FIT_US);
    let clock = VirtualClock::new();

    let ft = factorized_fixture(13);
    let y = labels(&ft, false);
    let config = LinRegConfig {
        epochs: 25,
        learning_rate: 0.01,
        ..LinRegConfig::default()
    };
    assert_steady_state(|ws| {
        let _fit_span = span(&clock, &FIT_US);
        clock.advance_us(17);
        let mut model = LinearRegression::new(config.clone());
        model.fit_with_workspace(&ft, &y, ws).expect("trains");
        FITS.inc();
    });

    let snap = reg.snapshot();
    assert_eq!(snap.counter("test.fits"), Some(3));
    let fit_us = snap.histogram("test.fit_us").expect("mounted");
    assert_eq!(fit_us.count(), 3);
    // The dispatch counters moved while the steady state held: the
    // kernels recorded without allocating.
    assert!(snap.counter("factorize.lmm.calls").unwrap_or(0) > 0);
}

#[test]
fn workspace_reuse_matches_fresh_results() {
    // Training through a reused workspace must be bit-identical to
    // training with fresh allocations.
    let ft = factorized_fixture(12);
    let y = labels(&ft, false);
    let config = LinRegConfig {
        epochs: 40,
        learning_rate: 0.01,
        ..LinRegConfig::default()
    };
    let mut fresh = LinearRegression::new(config.clone());
    fresh.fit(&ft, &y).expect("trains");
    let mut ws = Workspace::new();
    // Dirty the pool with unrelated shapes first.
    let junk = ws.take_matrix(13, 17);
    ws.give_matrix(junk);
    let mut reused = LinearRegression::new(config);
    reused.fit_with_workspace(&ft, &y, &mut ws).expect("trains");
    assert_eq!(
        fresh.coefficients().unwrap(),
        reused.coefficients().unwrap(),
        "workspace reuse changed the numerics"
    );
}
